// MVCC snapshot semantics of the catalog (docs/durability.md, "MVCC
// snapshots"): snapshots pin relation versions, writers install fresh
// versions via copy-on-write only when pinned, and readers never
// observe a half-applied write. Run under TSan, the concurrent cases
// also prove the reader/writer paths race-free.
#include <atomic>
#include <thread>
#include <vector>

#include "relational/catalog.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  Relation t("T", Schema{{"x", ValueType::kFuzzy}});
  EXPECT_OK(t.Append(Tuple({Value::Number(1)}, 1.0)));
  EXPECT_OK(catalog.AddRelation(std::move(t)));
  return catalog;
}

Status AppendNumber(Catalog* catalog, double v) {
  return catalog->MutateRelation("T", [v](Relation* relation) {
    return relation->Append(Tuple({Value::Number(v)}, 1.0));
  });
}

TEST(MvccTest, SnapshotPinsThePreWriteVersion) {
  Catalog catalog = MakeCatalog();
  const Catalog snapshot = catalog.Snapshot();
  ASSERT_OK(AppendNumber(&catalog, 2));

  ASSERT_OK_AND_ASSIGN(const Relation* pinned, snapshot.GetRelation("T"));
  EXPECT_EQ(pinned->NumTuples(), 1u);
  ASSERT_OK_AND_ASSIGN(const Relation* live, catalog.GetRelation("T"));
  EXPECT_EQ(live->NumTuples(), 2u);
}

TEST(MvccTest, SnapshotServesDroppedRelations) {
  Catalog catalog = MakeCatalog();
  const Catalog snapshot = catalog.Snapshot();
  catalog.DropRelation("T");
  EXPECT_FALSE(catalog.HasRelation("T"));
  ASSERT_OK_AND_ASSIGN(const Relation* pinned, snapshot.GetRelation("T"));
  EXPECT_EQ(pinned->NumTuples(), 1u);
}

TEST(MvccTest, UnpinnedWritesMutateInPlace) {
  Catalog catalog = MakeCatalog();
  // No snapshot pins T, so the write must reuse the installed version:
  // the pointer observed before the write sees the new contents.
  ASSERT_OK_AND_ASSIGN(const Relation* before, catalog.GetRelation("T"));
  const uint64_t id = before->id();
  ASSERT_OK(AppendNumber(&catalog, 2));
  ASSERT_OK_AND_ASSIGN(const Relation* after, catalog.GetRelation("T"));
  EXPECT_EQ(after, before);
  EXPECT_EQ(after->NumTuples(), 2u);
  EXPECT_EQ(after->id(), id);
}

TEST(MvccTest, PinnedWritesCopyOnWrite) {
  Catalog catalog = MakeCatalog();
  ASSERT_OK_AND_ASSIGN(const std::shared_ptr<const Relation> pinned,
                       catalog.GetRelationRef("T"));
  const uint64_t id = pinned->id();
  const uint64_t version = pinned->version();

  ASSERT_OK(AppendNumber(&catalog, 2));

  // The pin still serves the old contents...
  EXPECT_EQ(pinned->NumTuples(), 1u);
  // ...while the catalog installed a new version of the same chain: the
  // id survives (id-keyed cache invalidation reaches every version) but
  // the version is fresh (version-keyed cache entries cannot match).
  ASSERT_OK_AND_ASSIGN(const Relation* live, catalog.GetRelation("T"));
  EXPECT_EQ(live->NumTuples(), 2u);
  EXPECT_EQ(live->id(), id);
  EXPECT_NE(live->version(), version);
}

TEST(MvccTest, CopyForWriteKeepsIdAndStampsFreshVersion) {
  Relation t("T", Schema{{"x", ValueType::kFuzzy}});
  ASSERT_OK(t.Append(Tuple({Value::Number(1)}, 1.0)));
  const Relation copy = t.CopyForWrite();
  EXPECT_EQ(copy.id(), t.id());
  EXPECT_NE(copy.version(), t.version());
  EXPECT_TRUE(copy.EquivalentTo(t));

  // A plain copy, by contrast, is a new chain.
  const Relation plain(t);
  EXPECT_NE(plain.id(), t.id());
}

TEST(MvccTest, GetMutableRelationCopiesWhenPinned) {
  Catalog catalog = MakeCatalog();
  const Catalog snapshot = catalog.Snapshot();
  ASSERT_OK_AND_ASSIGN(Relation* mut, catalog.GetMutableRelation("T"));
  ASSERT_OK(mut->Append(Tuple({Value::Number(2)}, 1.0)));
  ASSERT_OK_AND_ASSIGN(const Relation* pinned, snapshot.GetRelation("T"));
  EXPECT_EQ(pinned->NumTuples(), 1u);
  ASSERT_OK_AND_ASSIGN(const Relation* live, catalog.GetRelation("T"));
  EXPECT_EQ(live->NumTuples(), 2u);
}

TEST(MvccTest, FailedMutationLeavesCatalogUntouched) {
  Catalog catalog = MakeCatalog();
  const Catalog snapshot = catalog.Snapshot();  // force the CoW path
  const Status failed = catalog.MutateRelation("T", [](Relation* relation) {
    // Arity mismatch: rejected by Relation::Append.
    return relation->Append(Tuple({Value::Number(1), Value::Number(2)}, 1.0));
  });
  EXPECT_FALSE(failed.ok());
  ASSERT_OK_AND_ASSIGN(const Relation* live, catalog.GetRelation("T"));
  EXPECT_EQ(live->NumTuples(), 1u);
}

// One serialized writer, many concurrent snapshot readers. Each reader
// repeatedly snapshots and scans; every scan must see a consistent
// prefix of the writer's appends (values 1..k for some k), never a
// half-applied write. TSan makes this also a data-race proof.
TEST(MvccTest, SlowReadersSeeConsistentPrefixesWhileWriterAppends) {
  Catalog catalog = MakeCatalog();
  constexpr int kAppends = 200;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> inconsistencies{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&catalog, &done, &inconsistencies] {
      size_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        const Catalog snapshot = catalog.Snapshot();
        auto relation = snapshot.GetRelation("T");
        if (!relation.ok()) {
          inconsistencies.fetch_add(1);
          continue;
        }
        const size_t n = (*relation)->NumTuples();
        // Appends only: a later snapshot can never show fewer tuples.
        if (n < last_seen) inconsistencies.fetch_add(1);
        last_seen = n;
        // The contents are the values 1..n in insertion order.
        for (size_t i = 0; i < n; ++i) {
          const Value& value = (*relation)->TupleAt(i).ValueAt(0);
          if (!value.is_fuzzy() ||
              value.AsFuzzy().CrispValue() != static_cast<double>(i + 1)) {
            inconsistencies.fetch_add(1);
            break;
          }
        }
      }
    });
  }

  for (int i = 2; i <= kAppends; ++i) {
    ASSERT_OK(AppendNumber(&catalog, i));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(inconsistencies.load(), 0);
  ASSERT_OK_AND_ASSIGN(const Relation* live, catalog.GetRelation("T"));
  EXPECT_EQ(live->NumTuples(), static_cast<size_t>(kAppends));
}

}  // namespace
}  // namespace fuzzydb
