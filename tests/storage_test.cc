#include <gtest/gtest.h>

#include <cstdio>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/serializer.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_storage_" + name;
}

// ------------------------------ Page ---------------------------------

TEST(PageTest, InsertAndReadBack) {
  Page page;
  EXPECT_EQ(page.NumRecords(), 0);
  const uint8_t rec1[] = {1, 2, 3};
  const uint8_t rec2[] = {9, 8, 7, 6};
  EXPECT_EQ(page.Insert(rec1, sizeof(rec1)), 0);
  EXPECT_EQ(page.Insert(rec2, sizeof(rec2)), 1);
  EXPECT_EQ(page.NumRecords(), 2);
  uint16_t len = 0;
  const uint8_t* r = page.Record(0, &len);
  ASSERT_EQ(len, 3);
  EXPECT_EQ(r[2], 3);
  r = page.Record(1, &len);
  ASSERT_EQ(len, 4);
  EXPECT_EQ(r[0], 9);
}

TEST(PageTest, FillsUpAndRejects) {
  Page page;
  std::vector<uint8_t> record(1000, 0xab);
  int inserted = 0;
  while (page.Insert(record.data(), record.size()) >= 0) ++inserted;
  // 8 records of ~1004 bytes fit in an 8 KiB page.
  EXPECT_EQ(inserted, 8);
  EXPECT_FALSE(page.Fits(record.size()));
  EXPECT_TRUE(page.Fits(8));  // small records still fit
}

TEST(PageTest, ResetClears) {
  Page page;
  const uint8_t rec[] = {1};
  page.Insert(rec, 1);
  page.Reset();
  EXPECT_EQ(page.NumRecords(), 0);
}

// --------------------------- Serializer -------------------------------

TEST(SerializerTest, RoundTripsAllValueTypes) {
  const Tuple original({Value::Null(), Value::String("hello world"),
                        Value::Number(42.5),
                        Value::Fuzzy(Trapezoid(1, 2, 3, 4))},
                       0.625);
  std::vector<uint8_t> bytes;
  SerializeTuple(original, &bytes);
  ASSERT_OK_AND_ASSIGN(Tuple restored,
                       DeserializeTuple(bytes.data(), bytes.size()));
  EXPECT_TRUE(restored.SameValues(original));
  EXPECT_DOUBLE_EQ(restored.degree(), 0.625);
}

TEST(SerializerTest, PadsToMinimumSize) {
  const Tuple t({Value::Number(1)}, 1.0);
  std::vector<uint8_t> bytes;
  SerializeTuple(t, &bytes, 256);
  EXPECT_EQ(bytes.size(), 256u);
  ASSERT_OK_AND_ASSIGN(Tuple restored,
                       DeserializeTuple(bytes.data(), bytes.size()));
  EXPECT_TRUE(restored.SameValues(t));
}

TEST(SerializerTest, SizeMatchesActual) {
  const Tuple t({Value::String("abc"), Value::Fuzzy(Trapezoid(0, 1, 2, 3))},
                0.5);
  std::vector<uint8_t> bytes;
  SerializeTuple(t, &bytes);
  EXPECT_EQ(bytes.size(), SerializedTupleSize(t));
}

TEST(SerializerTest, RejectsTruncatedInput) {
  const Tuple t({Value::String("abcdef")}, 1.0);
  std::vector<uint8_t> bytes;
  SerializeTuple(t, &bytes);
  const auto result = DeserializeTuple(bytes.data(), 4);
  EXPECT_FALSE(result.ok());
}

// --------------------------- BufferPool -------------------------------

TEST(BufferPoolTest, CountsReadsHitsAndEvictions) {
  const std::string path = TempPath("pool");
  ASSERT_OK_AND_ASSIGN(auto file, PageFile::Create(path));
  Page page;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId id, file->AppendPage(page));
    (void)id;
  }

  BufferPool pool(2);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 1).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());  // hit
  EXPECT_EQ(pool.stats().page_reads, 2u);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);

  // Page 2 evicts the LRU entry (page 1).
  ASSERT_TRUE(pool.GetPage(file.get(), 2).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 1).ok());  // miss again
  EXPECT_EQ(pool.stats().page_reads, 4u);

  file.reset();
  RemoveFileIfExists(path);
}

TEST(BufferPoolTest, WriteThroughUpdatesCachedCopy) {
  const std::string path = TempPath("wt");
  ASSERT_OK_AND_ASSIGN(auto file, PageFile::Create(path));
  Page page;
  const uint8_t rec[] = {42};
  page.Insert(rec, 1);
  ASSERT_OK(file->WritePage(0, page));

  BufferPool pool(4);
  ASSERT_OK_AND_ASSIGN(const Page* cached, pool.GetPage(file.get(), 0));
  EXPECT_EQ(cached->NumRecords(), 1);

  Page updated;
  updated.Insert(rec, 1);
  updated.Insert(rec, 1);
  ASSERT_OK(pool.WritePage(file.get(), 0, updated));
  ASSERT_OK_AND_ASSIGN(cached, pool.GetPage(file.get(), 0));
  EXPECT_EQ(cached->NumRecords(), 2);
  EXPECT_EQ(pool.stats().page_writes, 1u);

  file.reset();
  RemoveFileIfExists(path);
}

// ---------------------------- HeapFile --------------------------------

TEST(HeapFileTest, WriteScanRoundTrip) {
  const std::string path = TempPath("heap");
  Relation relation("R", Schema{Column{"A", ValueType::kFuzzy},
                                Column{"B", ValueType::kString}});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(relation.Append(
        Tuple({Value::Number(i), Value::String("row" + std::to_string(i))},
              1.0 - i * 1e-4)));
  }

  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(auto file,
                       WriteRelationToFile(relation, path, &pool));
  EXPECT_GT(file->NumPages(), 1u);

  ASSERT_OK_AND_ASSIGN(
      Relation restored,
      ReadRelationFromFile(file.get(), &pool, "R", relation.schema()));
  ASSERT_EQ(restored.NumTuples(), relation.NumTuples());
  for (size_t i = 0; i < restored.NumTuples(); ++i) {
    EXPECT_TRUE(restored.TupleAt(i).SameValues(relation.TupleAt(i)));
    EXPECT_DOUBLE_EQ(restored.TupleAt(i).degree(),
                     relation.TupleAt(i).degree());
  }

  file.reset();
  RemoveFileIfExists(path);
}

TEST(HeapFileTest, PaddingControlsPageCount) {
  const std::string small = TempPath("small"), large = TempPath("large");
  Relation relation("R", Schema{Column{"A", ValueType::kFuzzy}});
  for (int i = 0; i < 256; ++i) {
    ASSERT_OK(relation.Append(Tuple({Value::Number(i)}, 1.0)));
  }
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(auto f1, WriteRelationToFile(relation, small, &pool, 0));
  ASSERT_OK_AND_ASSIGN(auto f2,
                       WriteRelationToFile(relation, large, &pool, 1024));
  EXPECT_LT(f1->NumPages(), f2->NumPages());
  // 1024-byte records: 7 per 8 KiB page -> ceil(256/7) = 37 pages.
  EXPECT_EQ(f2->NumPages(), 37u);
  f1.reset();
  f2.reset();
  RemoveFileIfExists(small);
  RemoveFileIfExists(large);
}

TEST(HeapFileTest, ScannerSeekToPage) {
  const std::string path = TempPath("seek");
  Relation relation("R", Schema{Column{"A", ValueType::kFuzzy}});
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(relation.Append(Tuple({Value::Number(i)}, 1.0)));
  }
  BufferPool pool(4);
  ASSERT_OK_AND_ASSIGN(auto file,
                       WriteRelationToFile(relation, path, &pool, 512));
  ASSERT_GT(file->NumPages(), 2u);

  HeapFileScanner scanner(file.get(), &pool);
  scanner.SeekToPage(1);
  Tuple t;
  bool has = false;
  ASSERT_OK(scanner.Next(&t, &has));
  ASSERT_TRUE(has);
  // 15 records of 512 bytes per page: page 1 starts at tuple 15.
  EXPECT_DOUBLE_EQ(t.ValueAt(0).AsFuzzy().CrispValue(), 15.0);

  file.reset();
  RemoveFileIfExists(path);
}

}  // namespace
}  // namespace fuzzydb
