#include "fuzzy/arithmetic.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fuzzydb {
namespace {

TEST(FuzzyArithmeticTest, AdditionIsCornerWise) {
  // The paper's Section 6 example: x + y has 0-cut [x1+y1, x4+y4] and
  // 1-cut [x2+y2, x3+y3].
  const Trapezoid x(1, 2, 3, 4), y(10, 20, 30, 40);
  EXPECT_EQ(FuzzyAdd(x, y), Trapezoid(11, 22, 33, 44));
}

TEST(FuzzyArithmeticTest, AdditionWithCrisp) {
  EXPECT_EQ(FuzzyAdd(Trapezoid::Crisp(5), Trapezoid(1, 2, 3, 4)),
            Trapezoid(6, 7, 8, 9));
}

TEST(FuzzyArithmeticTest, SubtractionReversesCuts) {
  const Trapezoid x(10, 20, 30, 40), y(1, 2, 3, 4);
  EXPECT_EQ(FuzzySubtract(x, y), Trapezoid(6, 17, 28, 39));
  // x - x is spread around zero, not crisp zero (interval arithmetic).
  const Trapezoid spread = FuzzySubtract(y, y);
  EXPECT_DOUBLE_EQ(spread.a(), -3);
  EXPECT_DOUBLE_EQ(spread.d(), 3);
  EXPECT_DOUBLE_EQ(spread.Membership(0), 1.0);
}

TEST(FuzzyArithmeticTest, MultiplicationPositive) {
  EXPECT_EQ(FuzzyMultiply(Trapezoid(1, 2, 3, 4), Trapezoid(2, 2, 2, 2)),
            Trapezoid(2, 4, 6, 8));
}

TEST(FuzzyArithmeticTest, MultiplicationMixedSigns) {
  const Trapezoid x(-2, -1, 1, 2), y(3, 4, 5, 6);
  const Trapezoid p = FuzzyMultiply(x, y);
  EXPECT_DOUBLE_EQ(p.a(), -12);  // -2 * 6
  EXPECT_DOUBLE_EQ(p.b(), -5);   // -1 * 5
  EXPECT_DOUBLE_EQ(p.c(), 5);    // 1 * 5
  EXPECT_DOUBLE_EQ(p.d(), 12);   // 2 * 6
}

TEST(FuzzyArithmeticTest, DivisionByPositive) {
  ASSERT_OK_AND_ASSIGN(
      Trapezoid q, FuzzyDivide(Trapezoid(10, 20, 30, 40), Trapezoid::Crisp(10)));
  EXPECT_EQ(q, Trapezoid(1, 2, 3, 4));
}

TEST(FuzzyArithmeticTest, DivisionBySupportContainingZeroFails) {
  const auto result =
      FuzzyDivide(Trapezoid::Crisp(1), Trapezoid(-1, 0, 0, 1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzyArithmeticTest, ScaleByPositiveAndNegative) {
  EXPECT_EQ(FuzzyScale(Trapezoid(10, 20, 30, 40), 10.0),
            Trapezoid(1, 2, 3, 4));
  EXPECT_EQ(FuzzyScale(Trapezoid(10, 20, 30, 40), -10.0),
            Trapezoid(-4, -3, -2, -1));
}

TEST(FuzzyArithmeticTest, AverageOfTwoViaAddAndScale) {
  const Trapezoid sum =
      FuzzyAdd(Trapezoid(1, 2, 3, 4), Trapezoid(3, 4, 5, 6));
  EXPECT_EQ(FuzzyScale(sum, 2.0), Trapezoid(2, 3, 4, 5));
}

}  // namespace
}  // namespace fuzzydb
