#include "algebra/algebra.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzzy/necessity.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace algebra {
namespace {

using testing_util::DegreeOf;

Relation NumberSet(const std::string& name,
                   const std::vector<std::pair<double, double>>& rows) {
  Relation rel(name, Schema{Column{"A", ValueType::kFuzzy}});
  for (const auto& [v, d] : rows) {
    EXPECT_OK(rel.Append(Tuple({Value::Number(v)}, d)));
  }
  return rel;
}

// ------------------------------ Select --------------------------------

TEST(AlgebraSelectTest, CombinesMembershipAndPredicateByMin) {
  Relation r("R", Schema{Column{"AGE", ValueType::kFuzzy}});
  ASSERT_OK(r.Append(Tuple({Value::Number(24)}, 0.6)));
  ASSERT_OK(r.Append(Tuple({Value::Number(27)}, 1.0)));
  ASSERT_OK(r.Append(Tuple({Value::Number(50)}, 1.0)));

  const Trapezoid medium_young(20, 25, 30, 35);
  Relation out = Select(
      r, ColumnCompare(0, CompareOp::kEq, Value::Fuzzy(medium_young)));
  ASSERT_EQ(out.NumTuples(), 2u);
  // min(0.6, mu(24)=0.8) = 0.6; min(1, mu(27)=1) = 1; 50 excluded.
  EXPECT_DOUBLE_EQ(DegreeOf(out, 24.0), 0.6);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 27.0), 1.0);
}

TEST(AlgebraSelectTest, ComposesWithItself) {
  // sigma_p(sigma_q(R)) == sigma_q(sigma_p(R)) == sigma_{p AND q}(R):
  // the composability property the possibility-only measure buys.
  Relation r = NumberSet("R", {{1, 1}, {5, 0.9}, {9, 0.7}});
  auto p = ColumnCompare(0, CompareOp::kGe, Value::Number(3));
  auto q = ColumnCompare(0, CompareOp::kLe, Value::Number(7));
  Relation pq = Select(Select(r, p), q);
  Relation qp = Select(Select(r, q), p);
  EXPECT_TRUE(pq.EquivalentTo(qp));
  ASSERT_EQ(pq.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(DegreeOf(pq, 5.0), 0.9);
}

// ------------------------------ Project -------------------------------

TEST(AlgebraProjectTest, MergesDuplicatesWithMaxDegree) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy},
                         Column{"B", ValueType::kFuzzy}});
  ASSERT_OK(r.Append(Tuple({Value::Number(1), Value::Number(10)}, 0.4)));
  ASSERT_OK(r.Append(Tuple({Value::Number(1), Value::Number(20)}, 0.9)));
  ASSERT_OK_AND_ASSIGN(Relation out, Project(r, {0}));
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(out.TupleAt(0).degree(), 0.9);
  EXPECT_EQ(out.schema().ColumnAt(0).name, "A");
}

TEST(AlgebraProjectTest, RejectsBadColumn) {
  Relation r = NumberSet("R", {{1, 1}});
  EXPECT_FALSE(Project(r, {3}).ok());
}

TEST(AlgebraProjectTest, DuplicateColumnNamesDisambiguated) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy},
                         Column{"B", ValueType::kFuzzy}});
  ASSERT_OK(r.Append(Tuple({Value::Number(1), Value::Number(2)}, 1.0)));
  ASSERT_OK_AND_ASSIGN(Relation out, Project(r, {0, 0, 1}));
  EXPECT_EQ(out.schema().ColumnAt(1).name, "A_2");
}

// --------------------------- Product / Join ---------------------------

TEST(AlgebraJoinTest, ProductDegreesAreMin) {
  Relation l = NumberSet("L", {{1, 0.8}});
  Relation r = NumberSet("R", {{2, 0.5}, {3, 1.0}});
  Relation out = CartesianProduct(l, r);
  ASSERT_EQ(out.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(out.TupleAt(0).degree(), 0.5);
  EXPECT_DOUBLE_EQ(out.TupleAt(1).degree(), 0.8);
  EXPECT_EQ(out.schema().NumColumns(), 2u);
  EXPECT_EQ(out.schema().ColumnAt(1).name, "A_2");  // collision renamed
}

TEST(AlgebraJoinTest, ThetaJoinFiltersByDegree) {
  Relation l = NumberSet("L", {{1, 1}, {5, 1}});
  Relation r = NumberSet("R", {{4, 1}, {9, 1}});
  Relation out =
      ThetaJoin(l, r, ColumnsCompare(0, CompareOp::kGt, 0));
  // (5 > 4) only.
  ASSERT_EQ(out.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(out.TupleAt(0).ValueAt(0).AsFuzzy().CrispValue(), 5.0);
}

TEST(AlgebraJoinTest, FuzzyEquiJoinMatchesThetaJoinOracle) {
  for (uint64_t seed : {41, 42, 43}) {
    Relation l = GenerateRandomRelation(seed, "L", 2, 60);
    Relation r = GenerateRandomRelation(seed + 100, "R", 2, 60);
    ASSERT_OK_AND_ASSIGN(Relation merged, FuzzyEquiJoin(l, 0, r, 1));
    Relation oracle =
        ThetaJoin(l, r, ColumnsCompare(0, CompareOp::kEq, 1));
    EXPECT_TRUE(merged.EquivalentTo(oracle, 1e-12)) << "seed " << seed;
  }
}

TEST(AlgebraJoinTest, FuzzyEquiJoinPaperQuery1) {
  // Query 1: pairs of about the same age.
  Catalog db = testing_util::MakePaperCatalog();
  const Relation* f = db.GetRelation("F").value();
  const Relation* m = db.GetRelation("M").value();
  ASSERT_OK_AND_ASSIGN(Relation pairs, FuzzyEquiJoin(*f, 2, *m, 2));
  // (Betty middle age, Bill middle age) joins with degree 1.
  bool found = false;
  for (const Tuple& t : pairs.tuples()) {
    if (t.ValueAt(1).AsString() == "Betty" &&
        t.ValueAt(5).AsString() == "Bill") {
      found = true;
      EXPECT_DOUBLE_EQ(t.degree(), 1.0);
    }
  }
  EXPECT_TRUE(found);
}

// --------------------------- Set operations ---------------------------

TEST(AlgebraSetTest, UnionTakesMax) {
  Relation l = NumberSet("L", {{1, 0.3}, {2, 0.9}});
  Relation r = NumberSet("R", {{1, 0.8}, {3, 0.4}});
  ASSERT_OK_AND_ASSIGN(Relation out, Union(l, r));
  ASSERT_EQ(out.NumTuples(), 3u);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 1.0), 0.8);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 2.0), 0.9);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 3.0), 0.4);
}

TEST(AlgebraSetTest, IntersectTakesMin) {
  Relation l = NumberSet("L", {{1, 0.3}, {2, 0.9}});
  Relation r = NumberSet("R", {{1, 0.8}, {2, 0.5}, {3, 1.0}});
  ASSERT_OK_AND_ASSIGN(Relation out, Intersect(l, r));
  ASSERT_EQ(out.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 1.0), 0.3);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 2.0), 0.5);
}

TEST(AlgebraSetTest, DifferenceUsesComplement) {
  Relation l = NumberSet("L", {{1, 1.0}, {2, 0.9}, {3, 0.5}});
  Relation r = NumberSet("R", {{1, 1.0}, {2, 0.3}});
  ASSERT_OK_AND_ASSIGN(Relation out, Difference(l, r));
  // 1: min(1, 1-1) = 0 -> gone. 2: min(0.9, 0.7) = 0.7. 3: 0.5.
  ASSERT_EQ(out.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 2.0), 0.7);
  EXPECT_DOUBLE_EQ(DegreeOf(out, 3.0), 0.5);
}

TEST(AlgebraSetTest, ArityMismatchRejected) {
  Relation l("L", Schema{Column{"A", ValueType::kFuzzy}});
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy},
                         Column{"B", ValueType::kFuzzy}});
  EXPECT_FALSE(Union(l, r).ok());
  EXPECT_FALSE(Intersect(l, r).ok());
  EXPECT_FALSE(Difference(l, r).ok());
}

TEST(AlgebraSetTest, DeMorganStyleLaws) {
  // Union/intersection idempotence and absorption under max/min degrees.
  Relation l = GenerateRandomRelation(77, "L", 1, 30, 0, 6);
  ASSERT_OK_AND_ASSIGN(Relation self_union, Union(l, l));
  Relation dedup = l;
  dedup.EliminateDuplicates();
  EXPECT_TRUE(self_union.EquivalentTo(dedup));
  ASSERT_OK_AND_ASSIGN(Relation self_intersect, Intersect(l, l));
  EXPECT_TRUE(self_intersect.EquivalentTo(dedup));
}

// ------------------------- Necessity measure --------------------------

TEST(NecessityTest, NeverExceedsPossibility) {
  // With convex normal distributions Nec <= Poss (Section 2.2).
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    double c[4];
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 20));
    std::sort(c, c + 4);
    const Trapezoid x(c[0], c[1], c[2], c[3]);
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 20));
    std::sort(c, c + 4);
    const Trapezoid y(c[0], c[1], c[2], c[3]);
    for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kLe,
                         CompareOp::kGt, CompareOp::kGe}) {
      EXPECT_LE(NecessityDegree(x, op, y),
                SatisfactionDegree(x, op, y) + 1e-12)
          << CompareOpName(op) << " " << x.ToString() << " "
          << y.ToString();
    }
  }
}

TEST(NecessityTest, CrispValuesAgreeWithPossibility) {
  const Trapezoid a = Trapezoid::Crisp(3), b = Trapezoid::Crisp(5);
  EXPECT_DOUBLE_EQ(NecessityDegree(a, CompareOp::kLt, b), 1.0);
  EXPECT_DOUBLE_EQ(NecessityDegree(b, CompareOp::kLt, a), 0.0);
  EXPECT_DOUBLE_EQ(NecessityDegree(a, CompareOp::kEq, a), 1.0);
}

TEST(NecessityTest, FuzzyEqualityIsNeverNecessary) {
  // Two genuinely fuzzy values may be equal (Poss > 0) but are never
  // necessarily equal (the values could differ).
  const Trapezoid x(0, 2, 4, 6), y(3, 4, 6, 8);
  EXPECT_GT(SatisfactionDegree(x, CompareOp::kEq, y), 0.0);
  EXPECT_DOUBLE_EQ(NecessityDegree(x, CompareOp::kEq, y), 0.0);
}

TEST(NecessityTest, ClearlySeparatedValues) {
  const Trapezoid low(0, 1, 2, 3), high(10, 11, 12, 13);
  EXPECT_DOUBLE_EQ(NecessityDegree(low, CompareOp::kLt, high), 1.0);
  EXPECT_DOUBLE_EQ(NecessityDegree(high, CompareOp::kLt, low), 0.0);
}

}  // namespace
}  // namespace algebra
}  // namespace fuzzydb
