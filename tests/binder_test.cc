#include "sql/binder.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fuzzydb {
namespace sql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  Catalog catalog_ = testing_util::MakePaperCatalog();
};

TEST_F(BinderTest, ResolvesQualifiedColumns) {
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      ParseAndBind("SELECT F.NAME FROM F WHERE F.AGE = \"medium young\"",
                   catalog_));
  ASSERT_EQ(bound->tables.size(), 1u);
  EXPECT_EQ(bound->tables[0].relation->name(), "F");
  ASSERT_EQ(bound->select.size(), 1u);
  EXPECT_EQ(bound->select[0].column.column, 1u);  // NAME
  ASSERT_EQ(bound->predicates.size(), 1u);
  EXPECT_FALSE(bound->predicates[0].rhs.is_column);
  EXPECT_TRUE(bound->predicates[0].rhs.constant.is_fuzzy());
}

TEST_F(BinderTest, ResolvesUnqualifiedColumnsWhenUnambiguous) {
  ASSERT_OK_AND_ASSIGN(auto bound,
                       ParseAndBind("SELECT NAME FROM F", catalog_));
  EXPECT_EQ(bound->select[0].column.column, 1u);
}

TEST_F(BinderTest, RejectsAmbiguousUnqualifiedColumn) {
  const auto result = ParseAndBind("SELECT NAME FROM F, M", catalog_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, RejectsUnknownRelationAndColumn) {
  EXPECT_EQ(ParseAndBind("SELECT X.A FROM X", catalog_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      ParseAndBind("SELECT F.NOPE FROM F", catalog_).status().code(),
      StatusCode::kBindError);
}

TEST_F(BinderTest, RejectsUnknownTerm) {
  const auto result = ParseAndBind(
      "SELECT F.NAME FROM F WHERE F.AGE = \"unheard of\"", catalog_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, BindsCorrelatedSubquery) {
  ASSERT_OK_AND_ASSIGN(auto bound, ParseAndBind(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE))sql",
                                                catalog_));
  ASSERT_EQ(bound->predicates.size(), 1u);
  const auto& sub = bound->predicates[0].subquery;
  ASSERT_NE(sub, nullptr);
  ASSERT_EQ(sub->predicates.size(), 1u);
  const auto& corr = sub->predicates[0];
  // M.AGE is local (up 0); F.AGE refers one block out (up 1).
  EXPECT_EQ(corr.lhs.column.up, 0);
  EXPECT_EQ(corr.rhs.column.up, 1);
  EXPECT_FALSE(corr.IsLocal());
  EXPECT_EQ(bound->NestingDepth(), 2);
}

TEST_F(BinderTest, RejectsCorrelatedSelectItem) {
  const auto result = ParseAndBind(
      "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT F.INCOME FROM M)",
      catalog_);
  // F.INCOME inside the subquery's SELECT is a correlated reference.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, RejectsMultiColumnSubquery) {
  const auto result = ParseAndBind(
      "SELECT F.NAME FROM F WHERE F.INCOME IN "
      "(SELECT M.INCOME, M.AGE FROM M)",
      catalog_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, RequiresAggregateForScalarSubquery) {
  const auto bad = ParseAndBind(
      "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT M.INCOME FROM M)",
      catalog_);
  ASSERT_FALSE(bad.ok());
  ASSERT_OK_AND_ASSIGN(
      auto good,
      ParseAndBind(
          "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M)",
          catalog_));
  EXPECT_EQ(good->predicates[0].kind, Predicate::Kind::kAggCompare);
}

TEST_F(BinderTest, RejectsAggregateInInSubquery) {
  const auto result = ParseAndBind(
      "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT MAX(M.INCOME) FROM M)",
      catalog_);
  ASSERT_FALSE(result.ok());
}

TEST_F(BinderTest, RejectsAggregateOverStrings) {
  const auto result = ParseAndBind(
      "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT MAX(M.NAME) FROM M)",
      catalog_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, RejectsDuplicateAliases) {
  const auto result = ParseAndBind("SELECT a.NAME FROM F a, M a", catalog_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, OutputSchemaNamesAggregates) {
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      ParseAndBind("SELECT F.NAME FROM F WHERE F.INCOME > "
                   "(SELECT AVG(M.INCOME) FROM M)",
                   catalog_));
  const auto& sub = bound->predicates[0].subquery;
  EXPECT_EQ(sub->output_schema.ColumnAt(0).name, "AVG(M.INCOME)");
  EXPECT_EQ(bound->output_schema.ColumnAt(0).name, "NAME");
  EXPECT_EQ(bound->output_schema.ColumnAt(0).type, ValueType::kString);
}

TEST_F(BinderTest, WithThresholdPropagates) {
  ASSERT_OK_AND_ASSIGN(
      auto bound,
      ParseAndBind("SELECT F.NAME FROM F WITH D >= 0.7", catalog_));
  EXPECT_TRUE(bound->has_with);
  EXPECT_DOUBLE_EQ(bound->with_threshold, 0.7);
}

}  // namespace
}  // namespace sql
}  // namespace fuzzydb
