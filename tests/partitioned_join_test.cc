#include "engine/partitioned_join.h"

#include <gtest/gtest.h>

#include <map>

#include "engine/nested_loop_join.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_pjoin_" + name;
}

using PairMap = std::map<std::pair<double, std::string>, double>;

class PartitionedJoinTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(PartitionedJoinTest, MatchesNestedLoopOracleExactly) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t num_partitions = std::get<1>(GetParam());

  WorkloadConfig config;
  config.seed = seed;
  config.num_r = 300;
  config.num_s = 300;
  config.join_fanout = 5;
  config.partial_membership_fraction = 0.5;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  BufferPool pool(32);
  const std::string tag = std::to_string(seed) + "_" +
                          std::to_string(num_partitions);
  ASSERT_OK_AND_ASSIGN(
      auto r_file,
      WriteRelationToFile(dataset.r, TempPath("R" + tag), &pool, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_file,
      WriteRelationToFile(dataset.s, TempPath("S" + tag), &pool, 128));

  FuzzyJoinSpec spec;
  spec.outer_key = 1;
  spec.inner_key = 0;
  spec.residuals.push_back({2, 1, CompareOp::kEq});

  auto key_of = [](const Tuple& r, const Tuple& s) {
    return std::make_pair(r.ValueAt(0).AsFuzzy().CrispValue(),
                          s.ValueAt(0).AsFuzzy().ToString() + "/" +
                              s.ValueAt(1).AsFuzzy().ToString());
  };

  // Oracle. (Distinct S tuples can carry identical values, so the map
  // dedups; raw emission counts are compared separately.)
  PairMap expected;
  uint64_t expected_emissions = 0;
  IoStats nl_io;
  ASSERT_OK(FileNestedLoopJoin(r_file.get(), s_file.get(), &nl_io, 8, spec,
                               nullptr,
                               [&](const Tuple& r, const Tuple& s, double d) {
                                 ++expected_emissions;
                                 auto [it, fresh] =
                                     expected.emplace(key_of(r, s), d);
                                 if (!fresh) {
                                   it->second = std::max(it->second, d);
                                 }
                                 return Status::OK();
                               }));

  // Partitioned join: also counts raw emissions to prove no pair is
  // produced twice (each inner tuple lives in exactly one partition).
  PairMap actual;
  uint64_t emissions = 0;
  PartitionedJoinStats stats;
  CpuStats cpu;
  ASSERT_OK(FilePartitionedJoin(
      r_file.get(), s_file.get(), &pool, spec, num_partitions,
      TempPath("tmp" + tag), &cpu,
      [&](const Tuple& r, const Tuple& s, double d) {
        ++emissions;
        auto [it, fresh] = actual.emplace(key_of(r, s), d);
        if (!fresh) it->second = std::max(it->second, d);
        return Status::OK();
      },
      &stats));

  EXPECT_EQ(expected.size(), actual.size());
  EXPECT_EQ(emissions, expected_emissions)
      << "pair emitted a different number of times than the oracle";
  for (const auto& [key, degree] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end());
    EXPECT_NEAR(degree, it->second, 1e-12);
  }
  EXPECT_GE(stats.partitions, 1u);
  EXPECT_LE(stats.partitions, num_partitions);

  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("R" + tag));
  RemoveFileIfExists(TempPath("S" + tag));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPartitions, PartitionedJoinTest,
    ::testing::Combine(::testing::Values<uint64_t>(81, 82, 83),
                       ::testing::Values<size_t>(1, 4, 16)));

TEST(PartitionedJoinEdgeTest, EmptyRelations) {
  BufferPool pool(8);
  Relation empty("E", Schema{Column{"Z", ValueType::kFuzzy},
                             Column{"V", ValueType::kFuzzy}});
  ASSERT_OK_AND_ASSIGN(auto r_file,
                       WriteRelationToFile(empty, TempPath("empty_r"), &pool));
  ASSERT_OK_AND_ASSIGN(auto s_file,
                       WriteRelationToFile(empty, TempPath("empty_s"), &pool));
  FuzzyJoinSpec spec;
  spec.outer_key = 0;
  spec.inner_key = 0;
  uint64_t emissions = 0;
  ASSERT_OK(FilePartitionedJoin(r_file.get(), s_file.get(), &pool, spec, 8,
                                TempPath("empty_tmp"), nullptr,
                                [&](const Tuple&, const Tuple&, double) {
                                  ++emissions;
                                  return Status::OK();
                                }));
  EXPECT_EQ(emissions, 0u);
  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("empty_r"));
  RemoveFileIfExists(TempPath("empty_s"));
}

TEST(PartitionedJoinEdgeTest, RejectsNonEquijoin) {
  BufferPool pool(8);
  Relation rel("R", Schema{Column{"Z", ValueType::kFuzzy}});
  ASSERT_OK(rel.Append(Tuple({Value::Number(1)}, 1.0)));
  ASSERT_OK_AND_ASSIGN(auto file,
                       WriteRelationToFile(rel, TempPath("ne"), &pool));
  FuzzyJoinSpec spec;
  spec.key_op = CompareOp::kLe;
  const Status status = FilePartitionedJoin(
      file.get(), file.get(), &pool, spec, 4, TempPath("ne_tmp"), nullptr,
      [](const Tuple&, const Tuple&, double) { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  file.reset();
  RemoveFileIfExists(TempPath("ne"));
}

TEST(PartitionedJoinEdgeTest, WideOuterValuesReplicateButStayCorrect) {
  // One very wide outer value spans every partition.
  BufferPool pool(16);
  Relation r("R", Schema{Column{"X", ValueType::kFuzzy},
                         Column{"Y", ValueType::kFuzzy}});
  ASSERT_OK(r.Append(
      Tuple({Value::Number(0), Value::Fuzzy(Trapezoid(0, 10, 90, 100))}, 1.0)));
  ASSERT_OK(r.Append(Tuple({Value::Number(1), Value::Number(50)}, 1.0)));
  Relation s("S", Schema{Column{"Z", ValueType::kFuzzy}});
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(s.Append(Tuple({Value::Number(i)}, 1.0)));
  }
  ASSERT_OK_AND_ASSIGN(auto r_file,
                       WriteRelationToFile(r, TempPath("wide_r"), &pool));
  ASSERT_OK_AND_ASSIGN(auto s_file,
                       WriteRelationToFile(s, TempPath("wide_s"), &pool));

  FuzzyJoinSpec spec;
  spec.outer_key = 1;
  spec.inner_key = 0;
  uint64_t pairs = 0;
  PartitionedJoinStats stats;
  ASSERT_OK(FilePartitionedJoin(r_file.get(), s_file.get(), &pool, spec, 8,
                                TempPath("wide_tmp"), nullptr,
                                [&](const Tuple&, const Tuple&, double d) {
                                  EXPECT_GT(d, 0.0);
                                  ++pairs;
                                  return Status::OK();
                                },
                                &stats));
  // The wide tuple joins the 99 crisp values in (0, 100); the crisp one
  // joins exactly 50. (0 and 100 have membership 0 in the wide value.)
  EXPECT_EQ(pairs, 99u + 1u);
  EXPECT_GT(stats.outer_replicas, 2u);  // the wide tuple was replicated
  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("wide_r"));
  RemoveFileIfExists(TempPath("wide_s"));
}

}  // namespace
}  // namespace fuzzydb
