#include "fuzzy/trapezoid.h"

#include <gtest/gtest.h>

namespace fuzzydb {
namespace {

TEST(TrapezoidTest, MembershipOnPlainTrapezoid) {
  const Trapezoid t(20, 25, 30, 35);  // "medium young" (Fig. 1)
  EXPECT_DOUBLE_EQ(t.Membership(19.9), 0.0);
  EXPECT_DOUBLE_EQ(t.Membership(20), 0.0);
  EXPECT_DOUBLE_EQ(t.Membership(24), 0.8);  // Fig. 1: mu(24) = 0.8
  EXPECT_DOUBLE_EQ(t.Membership(23), 0.6);  // Fig. 1: mu(23) = 0.6
  EXPECT_DOUBLE_EQ(t.Membership(25), 1.0);
  EXPECT_DOUBLE_EQ(t.Membership(27.5), 1.0);
  EXPECT_DOUBLE_EQ(t.Membership(30), 1.0);
  EXPECT_DOUBLE_EQ(t.Membership(32), 0.6);  // Fig. 1: mu(32) = 0.6
  EXPECT_DOUBLE_EQ(t.Membership(31), 0.8);
  EXPECT_DOUBLE_EQ(t.Membership(35), 0.0);
  EXPECT_DOUBLE_EQ(t.Membership(40), 0.0);
}

TEST(TrapezoidTest, CrispValue) {
  const Trapezoid t = Trapezoid::Crisp(28);
  EXPECT_TRUE(t.IsCrisp());
  EXPECT_DOUBLE_EQ(t.CrispValue(), 28);
  EXPECT_DOUBLE_EQ(t.Membership(28), 1.0);
  EXPECT_DOUBLE_EQ(t.Membership(27.999), 0.0);
  EXPECT_DOUBLE_EQ(t.SupportBegin(), 28);
  EXPECT_DOUBLE_EQ(t.SupportEnd(), 28);
}

TEST(TrapezoidTest, IntervalAndTriangleFactories) {
  const Trapezoid interval = Trapezoid::Interval(10, 20);
  EXPECT_DOUBLE_EQ(interval.Membership(10), 1.0);
  EXPECT_DOUBLE_EQ(interval.Membership(20), 1.0);
  EXPECT_DOUBLE_EQ(interval.Membership(9.99), 0.0);

  const Trapezoid triangle = Trapezoid::Triangle(30, 35, 40);  // "about 35"
  EXPECT_DOUBLE_EQ(triangle.Membership(35), 1.0);
  EXPECT_DOUBLE_EQ(triangle.Membership(32.5), 0.5);
  EXPECT_DOUBLE_EQ(triangle.Membership(30), 0.0);

  const Trapezoid about = Trapezoid::About(50, 5);  // "about 50"
  EXPECT_EQ(about, Trapezoid::Triangle(45, 50, 55));
}

TEST(TrapezoidTest, VerticalEdgesBelongToCore) {
  const Trapezoid left_vertical(10, 10, 15, 20);
  EXPECT_DOUBLE_EQ(left_vertical.Membership(10), 1.0);
  EXPECT_DOUBLE_EQ(left_vertical.Membership(9.999), 0.0);

  const Trapezoid right_vertical(10, 12, 20, 20);
  EXPECT_DOUBLE_EQ(right_vertical.Membership(20), 1.0);
  EXPECT_DOUBLE_EQ(right_vertical.Membership(20.001), 0.0);
}

TEST(TrapezoidTest, SupAtOrBelow) {
  const Trapezoid t(10, 20, 30, 40);
  EXPECT_DOUBLE_EQ(t.SupAtOrBelow(5), 0.0);
  EXPECT_DOUBLE_EQ(t.SupAtOrBelow(10), 0.0);
  EXPECT_DOUBLE_EQ(t.SupAtOrBelow(15), 0.5);
  EXPECT_DOUBLE_EQ(t.SupAtOrBelow(20), 1.0);
  EXPECT_DOUBLE_EQ(t.SupAtOrBelow(35), 1.0);  // nondecreasing past the core
  EXPECT_DOUBLE_EQ(t.SupAtOrBelow(100), 1.0);
}

TEST(TrapezoidTest, SupStrictlyBelowDiffersAtVerticalEdge) {
  const Trapezoid vertical(10, 10, 15, 20);
  EXPECT_DOUBLE_EQ(vertical.SupAtOrBelow(10), 1.0);
  EXPECT_DOUBLE_EQ(vertical.SupStrictlyBelow(10), 0.0);
  EXPECT_DOUBLE_EQ(vertical.SupStrictlyBelow(10.001), 1.0);

  const Trapezoid slanted(10, 20, 30, 40);
  // For a continuous edge the strict and closed variants agree.
  EXPECT_DOUBLE_EQ(slanted.SupStrictlyBelow(15), 0.5);
  EXPECT_DOUBLE_EQ(slanted.SupStrictlyBelow(20), 1.0);
  EXPECT_DOUBLE_EQ(slanted.SupStrictlyBelow(10), 0.0);
}

TEST(TrapezoidTest, SupAtOrAboveMirrors) {
  const Trapezoid t(10, 20, 30, 40);
  EXPECT_DOUBLE_EQ(t.SupAtOrAbove(45), 0.0);
  EXPECT_DOUBLE_EQ(t.SupAtOrAbove(40), 0.0);
  EXPECT_DOUBLE_EQ(t.SupAtOrAbove(35), 0.5);
  EXPECT_DOUBLE_EQ(t.SupAtOrAbove(30), 1.0);
  EXPECT_DOUBLE_EQ(t.SupAtOrAbove(5), 1.0);

  const Trapezoid vertical(10, 15, 20, 20);
  EXPECT_DOUBLE_EQ(vertical.SupAtOrAbove(20), 1.0);
  EXPECT_DOUBLE_EQ(vertical.SupStrictlyAbove(20), 0.0);
  EXPECT_DOUBLE_EQ(vertical.SupStrictlyAbove(19.999), 1.0);
}

TEST(TrapezoidTest, CoreCenterDefuzzification) {
  EXPECT_DOUBLE_EQ(Trapezoid(10, 20, 30, 40).CoreCenter(), 25.0);
  EXPECT_DOUBLE_EQ(Trapezoid::Crisp(7).CoreCenter(), 7.0);
  EXPECT_DOUBLE_EQ(Trapezoid::Triangle(0, 5, 20).CoreCenter(), 5.0);
}

TEST(TrapezoidTest, ToStringFormats) {
  EXPECT_EQ(Trapezoid::Crisp(28).ToString(), "28");
  EXPECT_EQ(Trapezoid(20, 25, 30, 35).ToString(), "trap(20,25,30,35)");
}

TEST(TrapezoidTest, SupportWidth) {
  EXPECT_DOUBLE_EQ(Trapezoid(20, 25, 30, 35).SupportWidth(), 15.0);
  EXPECT_DOUBLE_EQ(Trapezoid::Crisp(3).SupportWidth(), 0.0);
}

}  // namespace
}  // namespace fuzzydb
