#include "fuzzy/term_dictionary.h"

#include <gtest/gtest.h>

#include "fuzzy/degree.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

class BuiltInTermsTest : public ::testing::Test {
 protected:
  TermDictionary dict_ = TermDictionary::BuiltIn();

  Trapezoid Term(const std::string& name) {
    auto result = dict_.Lookup(name);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : Trapezoid();
  }
};

TEST_F(BuiltInTermsTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(Term("Medium Young"), Term("medium young"));
  EXPECT_EQ(Term("HIGH"), Term("high"));
}

TEST_F(BuiltInTermsTest, UnknownTermFails) {
  const auto result = dict_.Lookup("no such term");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(BuiltInTermsTest, GenericAboutFallback) {
  ASSERT_OK_AND_ASSIGN(Trapezoid about, dict_.Lookup("about 100"));
  EXPECT_DOUBLE_EQ(about.b(), 100);
  EXPECT_DOUBLE_EQ(about.c(), 100);
  EXPECT_DOUBLE_EQ(about.Membership(100), 1.0);
  EXPECT_DOUBLE_EQ(about.Membership(90), 0.0);
}

TEST_F(BuiltInTermsTest, DefineOverridesFallback) {
  dict_.Define("about 100", Trapezoid::Triangle(98, 100, 102));
  ASSERT_OK_AND_ASSIGN(Trapezoid about, dict_.Lookup("about 100"));
  EXPECT_EQ(about, Trapezoid::Triangle(98, 100, 102));
}

// ----- Calibration: every degree published in the paper reproduces -----

TEST_F(BuiltInTermsTest, Fig1MembershipValues) {
  EXPECT_DOUBLE_EQ(Term("medium young").Membership(24), 0.8);
  EXPECT_DOUBLE_EQ(Term("medium young").Membership(23), 0.6);
  EXPECT_DOUBLE_EQ(Term("medium young").Membership(32), 0.6);
  EXPECT_DOUBLE_EQ(Term("medium young").Membership(27), 1.0);
}

TEST_F(BuiltInTermsTest, Fig1About35VsMediumYoung) {
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("about 35"), Term("medium young")),
                   0.5);
}

TEST_F(BuiltInTermsTest, Example41AgeDegrees) {
  // Betty (middle age) vs the outer predicate AGE = "medium young": 0.7.
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("middle age"), Term("medium young")),
                   0.7);
  // Allen 202 (about 50) vs inner predicate AGE = "middle age": 0.4.
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("about 50"), Term("middle age")), 0.4);
  // Carl (about 29) does not satisfy AGE = "middle age" at all.
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("about 29"), Term("middle age")), 0.0);
  // Allen 201 (crisp 24) does not satisfy it either.
  EXPECT_DOUBLE_EQ(EqualityDegree(Trapezoid::Crisp(24), Term("middle age")),
                   0.0);
  // Cathy (about 50) does not satisfy AGE = "medium young".
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("about 50"), Term("medium young")),
                   0.0);
}

TEST_F(BuiltInTermsTest, Example41IncomeDegrees) {
  // Ann 101: d(about 60K IN T) = 0.3 via d(about 60K = high) = 0.3.
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("about 60k"), Term("high")), 0.3);
  // Ann 102: d(medium high IN T) = 0.7 via d(medium high = high) = 0.7.
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("medium high"), Term("high")), 0.7);
  // Cross terms that must vanish for T to be exactly {about 40K, high}.
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("about 60k"), Term("about 40k")), 0.0);
  EXPECT_DOUBLE_EQ(EqualityDegree(Term("medium high"), Term("about 40k")),
                   0.0);
}

TEST_F(BuiltInTermsTest, NamesEnumeratesDefinitions) {
  const auto names = dict_.Names();
  EXPECT_GE(names.size(), 14u);
  EXPECT_TRUE(dict_.Contains("medium young"));
  EXPECT_TRUE(dict_.Contains("about 40k"));
  EXPECT_FALSE(dict_.Contains("about 41k"));
}

}  // namespace
}  // namespace fuzzydb
