#include "engine/classifier.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fuzzydb {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  QueryType TypeOf(const std::string& text) {
    auto bound = sql::ParseAndBind(text, catalog_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    if (!bound.ok()) return QueryType::kGeneral;
    return Classify(**bound);
  }

  Catalog catalog_ = testing_util::MakePaperCatalog();
};

TEST_F(ClassifierTest, FlatQuery) {
  EXPECT_EQ(TypeOf("SELECT F.NAME FROM F WHERE F.AGE = \"medium young\""),
            QueryType::kFlat);
  EXPECT_EQ(TypeOf("SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE"),
            QueryType::kFlat);
}

TEST_F(ClassifierTest, TypeN) {
  // Paper Query 2: uncorrelated IN.
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.AGE = "medium young" AND
            F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = "middle age"))sql"),
            QueryType::kTypeN);
}

TEST_F(ClassifierTest, TypeJ) {
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE))sql"),
            QueryType::kTypeJ);
}

TEST_F(ClassifierTest, TypeNXAndJX) {
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME NOT IN (SELECT M.INCOME FROM M))sql"),
            QueryType::kTypeNX);
  // Paper Query 4 shape: correlated NOT IN.
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IS NOT IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE))sql"),
            QueryType::kTypeJX);
}

TEST_F(ClassifierTest, TypeAAndJA) {
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M))sql"),
            QueryType::kTypeA);
  // Paper Query 5 shape.
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M WHERE M.AGE = F.AGE))sql"),
            QueryType::kTypeJA);
}

TEST_F(ClassifierTest, TypeALLAndJALL) {
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME <= ALL (SELECT M.INCOME FROM M))sql"),
            QueryType::kTypeALL);
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME <= ALL (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE))sql"),
            QueryType::kTypeJALL);
}

TEST_F(ClassifierTest, TypeSOMEAndJSOME) {
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME > SOME (SELECT M.INCOME FROM M))sql"),
            QueryType::kTypeSOME);
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME > SOME (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE))sql"),
            QueryType::kTypeJSOME);
}

TEST_F(ClassifierTest, TypeEXISTSAndJEXISTS) {
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE EXISTS (SELECT M.NAME FROM M WHERE M.INCOME > "medium high"))sql"),
            QueryType::kTypeEXISTS);
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE NOT EXISTS (SELECT M.NAME FROM M WHERE M.AGE = F.AGE))sql"),
            QueryType::kTypeJEXISTS);
}

TEST_F(ClassifierTest, ChainQueries) {
  // 3-level chain in the shape of the paper's Query 6 (F -> M -> F).
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN
        (SELECT M.INCOME FROM M
         WHERE M.AGE = F.AGE AND M.INCOME IN
           (SELECT F.INCOME FROM F
            WHERE F.AGE = M.AGE)))sql"),
            QueryType::kChain);
}

TEST_F(ClassifierTest, ChainWithSkipLevelCorrelation) {
  // The innermost block references the outermost relation (up = 2),
  // allowed for chains (Section 8's p_{i,j}).
  EXPECT_EQ(TypeOf(R"sql(
      SELECT a.NAME FROM F a
      WHERE a.INCOME IN
        (SELECT b.INCOME FROM M b
         WHERE b.AGE = a.AGE AND b.INCOME IN
           (SELECT c.INCOME FROM F c
            WHERE c.AGE = b.AGE AND c.ID = a.ID)))sql"),
            QueryType::kChain);
}

TEST_F(ClassifierTest, MultiSubqueryQueries) {
  // Two independent subqueries at the same level: the kTypeMulti
  // extension (each evaluated by its own unnested plan, combined by min).
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M)
        AND F.AGE IN (SELECT M.AGE FROM M))sql"),
            QueryType::kTypeMulti);
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)
        AND F.INCOME > (SELECT MIN(M.INCOME) FROM M))sql"),
            QueryType::kTypeMulti);
}

TEST_F(ClassifierTest, GeneralQueries) {
  // Two subqueries where one nests further: not multi, not chain.
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M)
        AND F.AGE IN (SELECT M.AGE FROM M
                      WHERE M.INCOME IN (SELECT F.INCOME FROM F)))sql"),
            QueryType::kGeneral);
  // NOT IN nested below IN breaks the chain shape.
  EXPECT_EQ(TypeOf(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN
        (SELECT M.INCOME FROM M
         WHERE M.AGE NOT IN (SELECT F.AGE FROM F)))sql"),
            QueryType::kGeneral);
}

TEST_F(ClassifierTest, NamesAreStable) {
  EXPECT_STREQ(QueryTypeName(QueryType::kTypeJ), "J");
  EXPECT_STREQ(QueryTypeName(QueryType::kTypeJX), "JX");
  EXPECT_STREQ(QueryTypeName(QueryType::kChain), "CHAIN");
}

}  // namespace
}  // namespace fuzzydb
