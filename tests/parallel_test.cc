// The parallel execution layer: thread pool, morsel scheduling,
// ParallelFor/ParallelSort, and the determinism guarantee of the
// morsel-driven operators -- every query type must produce identical
// tuples, degrees, AND CpuStats counters for every thread count.
//
// Run this binary under TSan (-DFUZZYDB_SANITIZE=thread) to validate the
// synchronization; see README.md.
#include "parallel/parallel_for.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/naive_evaluator.h"
#include "engine/partitioned_join.h"
#include "engine/unnested_evaluator.h"
#include "fuzzy/interval_order.h"
#include "obs/trace.h"
#include "parallel/morsel.h"
#include "parallel/thread_pool.h"
#include "sort/external_sort.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_parallel_" + name;
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  auto future = pool.Submit([] {});
  future.get();
}

TEST(ThreadPoolTest, ExceptionReachesTheFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] {});
  auto bad = pool.Submit([] { throw std::runtime_error("boom"); });
  ok.get();
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; }).get();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&count] { ++count; });
    }
    // Destruction must complete all 50 submitted tasks before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

// ---------------------------------------------------------------------
// MorselCursor
// ---------------------------------------------------------------------

TEST(MorselCursorTest, SequentialRangesAreExact) {
  MorselCursor cursor(10, 4);
  EXPECT_EQ(cursor.NumMorsels(), 3u);
  size_t b = 0, e = 0;
  ASSERT_TRUE(cursor.Next(&b, &e));
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 4u);
  ASSERT_TRUE(cursor.Next(&b, &e));
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(e, 8u);
  ASSERT_TRUE(cursor.Next(&b, &e));
  EXPECT_EQ(b, 8u);
  EXPECT_EQ(e, 10u);  // last morsel is short
  EXPECT_FALSE(cursor.Next(&b, &e));
  EXPECT_FALSE(cursor.Next(&b, &e));  // stays exhausted
}

TEST(MorselCursorTest, EmptyInputHandsOutNothing) {
  MorselCursor cursor(0, 8);
  EXPECT_EQ(cursor.NumMorsels(), 0u);
  size_t b = 0, e = 0;
  EXPECT_FALSE(cursor.Next(&b, &e));
}

TEST(MorselCursorTest, ZeroMorselSizeClampsToOne) {
  MorselCursor cursor(3, 0);
  EXPECT_EQ(cursor.NumMorsels(), 3u);
  EXPECT_EQ(cursor.morsel_size(), 1u);
}

TEST(MorselCursorTest, ConcurrentDrainCoversEveryIndexOnce) {
  const size_t total = 10000;
  MorselCursor cursor(total, 7);
  std::vector<std::atomic<int>> hits(total);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      size_t b = 0, e = 0;
      while (cursor.Next(&b, &e)) {
        for (size_t i = b; i < e; ++i) ++hits[i];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(MorselRangesTest, MatchesTheCursorDecomposition) {
  const auto ranges = MorselRanges(10, 4);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 4}));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{4, 8}));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{8, 10}));
  EXPECT_TRUE(MorselRanges(0, 4).empty());
}

// ---------------------------------------------------------------------
// ParallelFor / ParallelSort
// ---------------------------------------------------------------------

class ParallelForTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  ParallelContext ctx{threads > 1 ? &pool : nullptr, /*morsel_size=*/64};

  const size_t total = 5000;
  std::vector<std::atomic<int>> hits(total);
  ParallelFor(ctx, total, [&](size_t worker, size_t begin, size_t end) {
    EXPECT_LT(worker, WorkerSlots(ctx));
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, PropagatesTheBodyException) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  ParallelContext ctx{threads > 1 ? &pool : nullptr, /*morsel_size=*/8};
  EXPECT_THROW(
      ParallelFor(ctx, 100,
                  [&](size_t, size_t begin, size_t) {
                    if (begin == 48) throw std::runtime_error("morsel 6");
                  }),
      std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForTest,
                         ::testing::Values<size_t>(1, 2, 4, 8));

TEST(ParallelForTest, EmptyRangeNeverCallsTheBody) {
  ThreadPool pool(2);
  ParallelContext ctx{&pool, 16};
  ParallelFor(ctx, 0, [&](size_t, size_t, size_t) { FAIL(); });
}

// make_less factory for ParallelSort over ints.
auto CountingIntLess() {
  return [](uint64_t* count) {
    return [count](int a, int b) {
      ++*count;
      return a < b;
    };
  };
}

TEST(ParallelSortTest, MatchesStdSortOracle) {
  std::mt19937 rng(7);
  for (size_t n : {0u, 1u, 5u, 100u, 3000u, 10000u}) {
    std::vector<int> values(n);
    // Narrow domain so duplicates are common.
    std::uniform_int_distribution<int> dist(0, 97);
    for (auto& v : values) v = dist(rng);
    std::vector<int> expected = values;
    std::sort(expected.begin(), expected.end());

    ThreadPool pool(4);
    ParallelContext ctx{&pool, /*morsel_size=*/128};
    uint64_t comparisons = 0;
    ParallelSort(ctx, &values, &comparisons, CountingIntLess());
    EXPECT_EQ(values, expected) << "n=" << n;
    if (n > 1) {
      EXPECT_GT(comparisons, 0u);
    }
  }
}

TEST(ParallelSortTest, OrderAndCountInvariantAcrossThreadCounts) {
  std::mt19937 rng(11);
  std::vector<int> input(5000);
  std::uniform_int_distribution<int> dist(0, 999);
  for (auto& v : input) v = dist(rng);

  std::vector<int> reference;
  uint64_t reference_count = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    ParallelContext ctx{threads > 1 ? &pool : nullptr, /*morsel_size=*/256};
    std::vector<int> values = input;
    uint64_t comparisons = 0;
    ParallelSort(ctx, &values, &comparisons, CountingIntLess());
    if (reference.empty()) {
      reference = values;
      reference_count = comparisons;
    } else {
      EXPECT_EQ(values, reference) << threads << " threads";
      EXPECT_EQ(comparisons, reference_count) << threads << " threads";
    }
  }
}

// ---------------------------------------------------------------------
// Whole-query determinism: serial and parallel runs of the unnesting
// evaluator must agree exactly -- tuples, degrees, and CpuStats.
// ---------------------------------------------------------------------

struct DeterminismCase {
  const char* name;
  const char* query;
};

// Everything about a trace that must be thread-count-invariant: tree
// shape, operator names/details, cardinalities, and every counter
// delta. Wall times and the threads= annotation are the only fields
// allowed to differ, so they are the only fields left out.
void AppendTraceSignature(const ExecTrace& trace, size_t id, int depth,
                          std::string* out) {
  const TraceNode& node = trace.nodes()[id];
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name;
  if (!node.detail.empty()) *out += " [" + node.detail + "]";
  if (node.input_rows != TraceNode::kNoCount) {
    *out += " in=" + std::to_string(node.input_rows);
  }
  if (node.output_rows != TraceNode::kNoCount) {
    *out += " out=" + std::to_string(node.output_rows);
  }
  *out += " pairs=" + std::to_string(node.cpu.tuple_pairs);
  *out += " degrees=" + std::to_string(node.cpu.degree_evaluations);
  *out += " cmp=" + std::to_string(node.cpu.comparisons);
  *out += " subq=" + std::to_string(node.cpu.subquery_evaluations);
  *out += " reads=" + std::to_string(node.io.page_reads);
  *out += " writes=" + std::to_string(node.io.page_writes);
  if (node.clamped) *out += " CLAMPED";
  *out += "\n";
  for (size_t child : node.children) {
    AppendTraceSignature(trace, child, depth + 1, out);
  }
}

std::string TraceSignature(const ExecTrace& trace) {
  std::string out;
  for (size_t root : trace.roots()) {
    AppendTraceSignature(trace, root, 0, &out);
  }
  return out;
}

const DeterminismCase kDeterminismCases[] = {
    {"TypeN",
     "SELECT R.C0 FROM R WHERE R.C1 IN (SELECT S.C0 FROM S WHERE S.C1 >= 5)"},
    {"TypeJ",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)"},
    {"TypeJ_TwoCorrelations",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 >= R.C0)"},
    {"TypeJX",
     "SELECT R.C0 FROM R WHERE R.C1 NOT IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)"},
    {"TypeJA_Max",
     "SELECT R.C0 FROM R WHERE R.C1 > "
     "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2)"},
    {"TypeJA_Count",
     "SELECT R.C0 FROM R WHERE R.C1 >= "
     "(SELECT COUNT(S.C0) FROM S WHERE S.C1 = R.C2)"},
    {"TypeJALL",
     "SELECT R.C0 FROM R WHERE R.C1 <= ALL "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)"},
    {"TypeJSOME",
     "SELECT R.C0 FROM R WHERE R.C1 < SOME "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)"},
    {"TypeJEXISTS",
     "SELECT R.C0 FROM R WHERE EXISTS "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)"},
    {"Multi_MixedKinds",
     "SELECT R.C0 FROM R WHERE "
     "R.C1 IN (SELECT S.C0 FROM S WHERE S.C1 = R.C2) AND "
     "R.C0 <= (SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C1) AND "
     "R.C2 < SOME (SELECT S.C1 FROM S)"},
    {"Chain3",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 IN "
     "(SELECT T3.C0 FROM T3 WHERE T3.C1 = S.C1))"},
};

class DeterminismTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeterminismTest, IdenticalAnswerAndStatsForEveryThreadCount) {
  const DeterminismCase& test_case = kDeterminismCases[GetParam()];

  // Relations large enough that every operator spans many 16-tuple
  // morsels (filter, sort runs, merge windows).
  Catalog catalog;
  ASSERT_OK(catalog.AddRelation(GenerateRandomRelation(101, "R", 3, 300)));
  ASSERT_OK(catalog.AddRelation(GenerateRandomRelation(202, "S", 2, 300)));
  ASSERT_OK(catalog.AddRelation(GenerateRandomRelation(303, "T3", 2, 120)));
  ASSERT_OK_AND_ASSIGN(auto bound,
                       sql::ParseAndBind(test_case.query, catalog));

  // The serial run is the reference; the naive evaluator guards its
  // correctness.
  NaiveEvaluator naive;
  ASSERT_OK_AND_ASSIGN(Relation oracle, naive.Evaluate(*bound));

  // The reference is the pure scalar serial run: one thread, batch
  // kernels off. Every (threads, batch_size) combination must
  // reproduce it exactly -- tuples, degrees, counters, and trace.
  ExecOptions options;
  options.morsel_size = 16;
  options.num_threads = 1;
  options.batch_size = 0;
  ExecTrace reference_trace;
  options.trace = &reference_trace;
  CpuStats reference_cpu;
  UnnestingEvaluator reference(options, &reference_cpu);
  ASSERT_OK_AND_ASSIGN(Relation expected, reference.Evaluate(*bound));
  EXPECT_TRUE(reference.last_was_unnested()) << test_case.query;
  EXPECT_TRUE(oracle.EquivalentTo(expected, 1e-12)) << test_case.name;
  const std::string reference_signature = TraceSignature(reference_trace);
  ASSERT_FALSE(reference_signature.empty());

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // Batch sizes chosen to exercise the scalar A/B switch (0), the
    // degenerate one-lane batch (1), a ragged morsel-interior size (7),
    // and the full SoA capacity (1024).
    for (size_t batch_size : {0u, 1u, 7u, 1024u}) {
      if (threads == 1 && batch_size == 0) continue;  // the reference
      options.num_threads = threads;
      options.batch_size = batch_size;
      ExecTrace trace;
      options.trace = &trace;
      CpuStats cpu;
      UnnestingEvaluator parallel(options, &cpu);
      ASSERT_OK_AND_ASSIGN(Relation actual, parallel.Evaluate(*bound));
      const std::string label = test_case.name + std::string(" with ") +
                                std::to_string(threads) + " threads, batch " +
                                std::to_string(batch_size);
      // Tuples and degrees: exact, not approximate -- the parallel and
      // batch plans perform the same arithmetic on the same operands.
      EXPECT_TRUE(expected.EquivalentTo(actual, 0.0))
          << label << "\nserial:\n"
          << expected.ToString(20) << "\nparallel:\n" << actual.ToString(20);
      // Work counters: identical, field by field.
      EXPECT_EQ(cpu.tuple_pairs, reference_cpu.tuple_pairs) << label;
      EXPECT_EQ(cpu.degree_evaluations, reference_cpu.degree_evaluations)
          << label;
      EXPECT_EQ(cpu.comparisons, reference_cpu.comparisons) << label;
      EXPECT_EQ(cpu.subquery_evaluations,
                reference_cpu.subquery_evaluations)
          << label;
      // The execution trace -- operator tree, cardinalities, and every
      // per-span counter delta -- is invariant across the whole matrix
      // (batch annotations live outside the signature by design).
      EXPECT_EQ(TraceSignature(trace), reference_signature) << label;
    }
  }
}

std::string DeterminismCaseName(
    const ::testing::TestParamInfo<size_t>& info) {
  return kDeterminismCases[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DeterminismTest,
                         ::testing::Range<size_t>(
                             0, std::size(kDeterminismCases)),
                         DeterminismCaseName);

// ---------------------------------------------------------------------
// File operators: partitioned join and external sort
// ---------------------------------------------------------------------

TEST(ParallelPartitionedJoinTest, EmitSequenceAndStatsMatchSerial) {
  WorkloadConfig config;
  config.seed = 91;
  config.num_r = 300;
  config.num_s = 300;
  config.join_fanout = 5;
  config.partial_membership_fraction = 0.5;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  BufferPool pool(32);
  ASSERT_OK_AND_ASSIGN(
      auto r_file, WriteRelationToFile(dataset.r, TempPath("pj_r"), &pool, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_file, WriteRelationToFile(dataset.s, TempPath("pj_s"), &pool, 128));

  FuzzyJoinSpec spec;
  spec.outer_key = 1;
  spec.inner_key = 0;
  spec.residuals.push_back({2, 1, CompareOp::kEq});

  struct Emitted {
    std::string r, s;
    double d;
    bool operator==(const Emitted&) const = default;
  };
  auto run = [&](const ParallelContext* ctx, std::vector<Emitted>* out,
                 CpuStats* cpu) {
    return FilePartitionedJoin(
        r_file.get(), s_file.get(), &pool, spec, /*num_partitions=*/8,
        TempPath("pj_tmp"), cpu,
        [&](const Tuple& r, const Tuple& s, double d) {
          out->push_back({r.ToString(), s.ToString(), d});
          return Status::OK();
        },
        /*stats=*/nullptr, ctx);
  };

  std::vector<Emitted> serial;
  CpuStats serial_cpu;
  ASSERT_OK(run(nullptr, &serial, &serial_cpu));
  EXPECT_GT(serial.size(), 0u);

  for (size_t threads : {2u, 4u}) {
    ThreadPool workers(threads);
    ParallelContext ctx{&workers, /*morsel_size=*/16};
    std::vector<Emitted> parallel;
    CpuStats cpu;
    ASSERT_OK(run(&ctx, &parallel, &cpu));
    EXPECT_EQ(parallel, serial) << threads << " threads";
    EXPECT_EQ(cpu, serial_cpu) << threads << " threads";
  }

  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("pj_r"));
  RemoveFileIfExists(TempPath("pj_s"));
}

TEST(ParallelExternalSortTest, OutputAndCountInvariantAcrossThreadCounts) {
  Relation relation = GenerateRandomRelation(55, "R", 2, 1200, 0, 500);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, TempPath("es_in"), &pool, 128));

  TupleLess less = [](const Tuple& a, const Tuple& b) {
    return IntervalOrderLess(a.ValueAt(0).AsFuzzy(), b.ValueAt(0).AsFuzzy());
  };

  std::vector<std::string> reference;
  uint64_t reference_comparisons = 0;
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool workers(threads);
    ParallelContext ctx{threads > 1 ? &workers : nullptr, /*morsel_size=*/64};
    const std::string out_path =
        TempPath("es_out" + std::to_string(threads));
    SortStats stats;
    ASSERT_OK_AND_ASSIGN(
        auto sorted,
        ExternalSort(input.get(), &pool, less, TempPath("es_tmp"), out_path,
                     /*buffer_pages=*/4, /*min_record_size=*/128, &stats,
                     &ctx));
    ASSERT_OK_AND_ASSIGN(
        Relation result,
        ReadRelationFromFile(sorted.get(), &pool, "sorted", relation.schema()));
    ASSERT_EQ(result.NumTuples(), relation.NumTuples());
    std::vector<std::string> sequence;
    for (const Tuple& t : result.tuples()) sequence.push_back(t.ToString());

    if (reference.empty()) {
      reference = std::move(sequence);
      reference_comparisons = stats.comparisons;
    } else {
      EXPECT_EQ(sequence, reference) << threads << " threads";
      EXPECT_EQ(stats.comparisons, reference_comparisons)
          << threads << " threads";
    }
    pool.Invalidate(sorted.get());
    sorted.reset();
    RemoveFileIfExists(out_path);
  }
  input.reset();
  RemoveFileIfExists(TempPath("es_in"));
}

}  // namespace
}  // namespace fuzzydb
