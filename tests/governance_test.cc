// Query-lifecycle governance end to end: cancellation, deadlines, and
// memory budgets surface as well-formed statuses at every thread count,
// and injected IO faults propagate cleanly -- no leaked temporaries, no
// unbalanced budget accounting.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "engine/exec_options.h"
#include "engine/merge_join.h"
#include "engine/naive_evaluator.h"
#include "engine/nested_loop_join.h"
#include "engine/partitioned_join.h"
#include "engine/unnested_evaluator.h"
#include "fuzzy/interval_order.h"
#include "obs/metrics.h"
#include "sort/external_sort.h"
#include "sql/binder.h"
#include "storage/io_stats.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

namespace fs = std::filesystem;

// A fresh directory for one test's files, so leak assertions can list
// exactly what a failed operator left behind.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::path(::testing::TempDir()) / ("fuzzydb_gov_" + name)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }

  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

  // Names of files in the directory containing `substr`.
  std::vector<std::string> FilesContaining(const std::string& substr) const {
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(path_)) {
      const std::string name = entry.path().filename().string();
      if (name.find(substr) != std::string::npos) out.push_back(name);
    }
    return out;
  }

 private:
  fs::path path_;
};

TupleLess IntervalLessOn(size_t col) {
  return [col](const Tuple& a, const Tuple& b) {
    return IntervalOrderLess(a.ValueAt(col).AsFuzzy(),
                             b.ValueAt(col).AsFuzzy());
  };
}

JoinEmit DiscardEmit() {
  return [](const Tuple&, const Tuple&, double) { return Status::OK(); };
}

// A Type J query over morsel-spanning relations; every governed operator
// (filter, sort, merge join) is on its plan.
constexpr char kJoinQuery[] =
    "SELECT R.C0 FROM R WHERE R.C1 IN "
    "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)";

Catalog MakeJoinCatalog() {
  Catalog catalog;
  EXPECT_OK(catalog.AddRelation(GenerateRandomRelation(11, "R", 3, 400)));
  EXPECT_OK(catalog.AddRelation(GenerateRandomRelation(22, "S", 2, 400)));
  return catalog;
}

class GovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoints::DisarmAll(); }
  void TearDown() override { FailPoints::DisarmAll(); }
};

// ---------------------------------------------------------------------
// Cancellation and deadlines through the evaluators, at 1/2/4/8 threads.

TEST_F(GovernanceTest, CancelledQueryFailsAtEveryThreadCount) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  EngineMetrics* metrics = EngineMetrics::Instance();
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    QueryContext qctx;
    qctx.Cancel();
    ExecOptions options;
    options.num_threads = threads;
    options.morsel_size = 16;
    options.context = &qctx;
    const uint64_t cancelled_before = metrics->queries_cancelled->Value();
    UnnestingEvaluator engine(options);
    Result<Relation> answer = engine.Evaluate(*bound);
    ASSERT_FALSE(answer.ok()) << threads << " threads";
    EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
        << threads << " threads: " << answer.status().ToString();
    // Budget accounting balances even on the abandoned path.
    EXPECT_EQ(qctx.memory().used(), 0) << threads << " threads";
    EXPECT_GE(metrics->queries_cancelled->Value(), cancelled_before + 1);
  }
}

TEST_F(GovernanceTest, ExpiredDeadlineFailsAtEveryThreadCount) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    QueryContext qctx;
    qctx.set_deadline_after_ms(0.0);  // already expired
    ExecOptions options;
    options.num_threads = threads;
    options.morsel_size = 16;
    options.context = &qctx;
    UnnestingEvaluator engine(options);
    Result<Relation> answer = engine.Evaluate(*bound);
    ASSERT_FALSE(answer.ok()) << threads << " threads";
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded)
        << threads << " threads: " << answer.status().ToString();
    EXPECT_EQ(qctx.memory().used(), 0) << threads << " threads";
  }
}

TEST_F(GovernanceTest, NaiveEvaluatorHonoursGovernance) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  {
    QueryContext qctx;
    qctx.Cancel();
    NaiveEvaluator naive(nullptr, nullptr, &qctx);
    Result<Relation> answer = naive.Evaluate(*bound);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
  }
  {
    QueryContext qctx;
    qctx.set_deadline_after_ms(0.0);
    NaiveEvaluator naive(nullptr, nullptr, &qctx);
    Result<Relation> answer = naive.Evaluate(*bound);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(GovernanceTest, MidFlightCancelStopsWorkersCleanly) {
  Catalog catalog = MakeJoinCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(kJoinQuery, catalog));
  // Race a cancel against the query: whichever wins, the evaluator must
  // return either a full answer or CANCELLED -- never crash, hang, or
  // leave the budget unbalanced.
  for (int round = 0; round < 5; ++round) {
    QueryContext qctx;
    ExecOptions options;
    options.num_threads = 4;
    options.morsel_size = 16;
    options.context = &qctx;
    std::thread canceller([&qctx] { qctx.Cancel(); });
    UnnestingEvaluator engine(options);
    Result<Relation> answer = engine.Evaluate(*bound);
    canceller.join();
    if (!answer.ok()) {
      EXPECT_EQ(answer.status().code(), StatusCode::kCancelled)
          << answer.status().ToString();
    }
    EXPECT_EQ(qctx.memory().used(), 0);
    // Once the cancel is visible, the next run must fail.
    UnnestingEvaluator again(options);
    Result<Relation> after = again.Evaluate(*bound);
    ASSERT_FALSE(after.ok());
    EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
  }
}

// ---------------------------------------------------------------------
// Memory budgets.

TEST_F(GovernanceTest, SortBudgetDenialLeavesNoRunFiles) {
  ScratchDir dir("sort_budget");
  Relation relation = GenerateRandomRelation(7, "R", 2, 2000);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, dir.File("in"), &pool, 128));

  QueryContext qctx;
  qctx.memory().set_limit(64);  // far below one sort batch
  auto sorted = ExternalSort(input.get(), &pool, IntervalLessOn(0),
                             dir.File("tmp"), dir.File("out"),
                             /*buffer_pages=*/4, /*min_record_size=*/128,
                             nullptr, nullptr, nullptr, &qctx);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kResourceExhausted)
      << sorted.status().ToString();
  EXPECT_TRUE(dir.FilesContaining(".run").empty());
  EXPECT_EQ(qctx.memory().used(), 0);
  EXPECT_GT(qctx.memory().denied_bytes(), 0u);
}

// ---------------------------------------------------------------------
// Fault injection: every early-error path cleans up after itself.

TEST_F(GovernanceTest, SpillWriteFaultLeavesNoRunFiles) {
  ScratchDir dir("spill_write");
  Relation relation = GenerateRandomRelation(8, "R", 2, 2000);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, dir.File("in"), &pool, 128));

  FailPoints::Arm("sort/spill-write", /*failures=*/1);
  auto sorted = ExternalSort(input.get(), &pool, IntervalLessOn(0),
                             dir.File("tmp"), dir.File("out"),
                             /*buffer_pages=*/4, /*min_record_size=*/128);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kIoError);
  EXPECT_NE(sorted.status().message().find("sort/spill-write"),
            std::string::npos);
  EXPECT_GE(FailPoints::Hits("sort/spill-write"), 1u);
  EXPECT_TRUE(dir.FilesContaining(".run").empty());
}

TEST_F(GovernanceTest, MidSpillFaultLeavesNoRunFiles) {
  // Let the first spills succeed so run files exist when the fault
  // fires; the sort must remove the earlier runs on its way out.
  ScratchDir dir("mid_spill");
  Relation relation = GenerateRandomRelation(9, "R", 2, 4000);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, dir.File("in"), &pool, 128));

  FailPoints::Arm("sort/spill-write", /*failures=*/1, /*skip=*/2);
  auto sorted = ExternalSort(input.get(), &pool, IntervalLessOn(0),
                             dir.File("tmp"), dir.File("out"),
                             /*buffer_pages=*/4, /*min_record_size=*/128);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kIoError);
  EXPECT_TRUE(dir.FilesContaining(".run").empty());
}

TEST_F(GovernanceTest, RunOpenFaultDuringMergeLeavesNoRunFiles) {
  ScratchDir dir("run_open");
  Relation relation = GenerateRandomRelation(10, "R", 2, 4000);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, dir.File("in"), &pool, 128));

  FailPoints::Arm("sort/run-open", /*failures=*/1);
  auto sorted = ExternalSort(input.get(), &pool, IntervalLessOn(0),
                             dir.File("tmp"), dir.File("out"),
                             /*buffer_pages=*/4, /*min_record_size=*/128);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kIoError);
  EXPECT_NE(sorted.status().message().find("sort/run-open"),
            std::string::npos);
  EXPECT_GE(FailPoints::Hits("sort/run-open"), 1u);
  EXPECT_TRUE(dir.FilesContaining(".run").empty());
}

TEST_F(GovernanceTest, FileCreateFaultFailsSortCleanly) {
  ScratchDir dir("file_create");
  Relation relation = GenerateRandomRelation(12, "R", 2, 500);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, dir.File("in"), &pool, 128));

  FailPoints::Arm("storage/file-create", /*failures=*/1);
  auto sorted = ExternalSort(input.get(), &pool, IntervalLessOn(0),
                             dir.File("tmp"), dir.File("out"),
                             /*buffer_pages=*/4, /*min_record_size=*/128);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kIoError);
  EXPECT_NE(sorted.status().message().find("storage/file-create"),
            std::string::npos);
  EXPECT_TRUE(dir.FilesContaining(".run").empty());
}

// Shared Type J file-join setup for the per-join fault tests.
struct JoinFiles {
  BufferPool pool{16};
  std::unique_ptr<PageFile> r_file;
  std::unique_ptr<PageFile> s_file;
  FuzzyJoinSpec spec;
};

void MakeJoinFiles(const ScratchDir& dir, JoinFiles* files) {
  WorkloadConfig config;
  config.seed = 5;
  config.num_r = 300;
  config.num_s = 300;
  config.join_fanout = 6;
  TypeJDataset dataset = GenerateTypeJDataset(config);
  ASSERT_OK_AND_ASSIGN(
      files->r_file,
      WriteRelationToFile(dataset.r, dir.File("R"), &files->pool, 128));
  ASSERT_OK_AND_ASSIGN(
      files->s_file,
      WriteRelationToFile(dataset.s, dir.File("S"), &files->pool, 128));
  files->spec.outer_key = 1;  // R.Y
  files->spec.inner_key = 0;  // S.Z
}

TEST_F(GovernanceTest, PageReadFaultFailsNestedLoopJoin) {
  ScratchDir dir("nl_fault");
  JoinFiles files;
  MakeJoinFiles(dir, &files);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  FailPoints::Arm("storage/page-read", /*failures=*/1);
  IoStats io;
  const Status status =
      FileNestedLoopJoin(files.r_file.get(), files.s_file.get(), &io,
                         /*buffer_pages=*/4, files.spec, nullptr,
                         DiscardEmit());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("storage/page-read"), std::string::npos);
  EXPECT_GE(FailPoints::Hits("storage/page-read"), 1u);
}

TEST_F(GovernanceTest, PageFetchFaultFailsMergeJoin) {
  ScratchDir dir("mj_fault");
  JoinFiles files;
  MakeJoinFiles(dir, &files);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  ASSERT_OK_AND_ASSIGN(
      auto r_sorted,
      ExternalSort(files.r_file.get(), &files.pool, IntervalLessOn(1),
                   dir.File("rs"), dir.File("R.sorted"), 8, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_sorted,
      ExternalSort(files.s_file.get(), &files.pool, IntervalLessOn(0),
                   dir.File("ss"), dir.File("S.sorted"), 8, 128));

  // bufferpool/get-page fires on cached pages too, so the fault is
  // deterministic regardless of what sorting left in the pool.
  FailPoints::Arm("bufferpool/get-page", /*failures=*/1);
  const Status status =
      FileMergeJoin(r_sorted.get(), s_sorted.get(), &files.pool, files.spec,
                    nullptr, DiscardEmit());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("bufferpool/get-page"), std::string::npos);
}

TEST_F(GovernanceTest, PageFetchFaultFailsPartitionedJoinWithoutLeaks) {
  ScratchDir dir("pj_fault");
  JoinFiles files;
  MakeJoinFiles(dir, &files);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  // Measure how many page fetches a clean run performs (an armed point
  // with a huge skip budget counts hits without ever failing)...
  FailPoints::Arm("bufferpool/get-page", /*failures=*/1,
                  /*skip=*/1'000'000'000);
  ASSERT_OK(FilePartitionedJoin(files.r_file.get(), files.s_file.get(),
                                &files.pool, files.spec,
                                /*num_partitions=*/4, dir.File("part"),
                                nullptr, DiscardEmit()));
  const uint64_t total_fetches = FailPoints::Hits("bufferpool/get-page");
  ASSERT_GT(total_fetches, 2u);
  EXPECT_TRUE(dir.FilesContaining(".p").empty()) << "clean run leaked";

  // ... then fail halfway through a second run: partition temporaries
  // exist at that point and must be removed on the error path.
  FailPoints::Arm("bufferpool/get-page", /*failures=*/1,
                  /*skip=*/static_cast<int64_t>(total_fetches / 2));
  const Status status = FilePartitionedJoin(
      files.r_file.get(), files.s_file.get(), &files.pool, files.spec,
      /*num_partitions=*/4, dir.File("part"), nullptr, DiscardEmit());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("bufferpool/get-page"), std::string::npos);
  EXPECT_TRUE(dir.FilesContaining(".p").empty()) << "error path leaked";
}

TEST_F(GovernanceTest, MergeJoinBudgetDenialBalances) {
  ScratchDir dir("mj_budget");
  JoinFiles files;
  MakeJoinFiles(dir, &files);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  ASSERT_OK_AND_ASSIGN(
      auto r_sorted,
      ExternalSort(files.r_file.get(), &files.pool, IntervalLessOn(1),
                   dir.File("rs"), dir.File("R.sorted"), 8, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_sorted,
      ExternalSort(files.s_file.get(), &files.pool, IntervalLessOn(0),
                   dir.File("ss"), dir.File("S.sorted"), 8, 128));

  QueryContext qctx;
  qctx.memory().set_limit(16);  // below a single window tuple
  const Status status =
      FileMergeJoin(r_sorted.get(), s_sorted.get(), &files.pool, files.spec,
                    nullptr, DiscardEmit(), nullptr, &qctx);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  EXPECT_EQ(qctx.memory().used(), 0);
  EXPECT_GT(qctx.memory().denied_bytes(), 0u);
}

TEST_F(GovernanceTest, EnvSpecDrivesInjection) {
  // The env path itself is covered by ArmFromSpec (failpoint_test); here
  // the spec string arms a storage point and a real IO site trips it.
  ScratchDir dir("env_spec");
  Relation relation = GenerateRandomRelation(13, "R", 2, 200);
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto input, WriteRelationToFile(relation, dir.File("in"), &pool, 128));

  ASSERT_TRUE(FailPoints::ArmFromSpec("storage/file-open=1"));
  auto reopened = PageFile::Open(dir.File("in"));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kIoError);
  EXPECT_NE(reopened.status().message().find("storage/file-open"),
            std::string::npos);
  // Spent after one failure: the reopen now succeeds.
  ASSERT_OK_AND_ASSIGN(auto ok_file, PageFile::Open(dir.File("in")));
  EXPECT_NE(ok_file, nullptr);
}

}  // namespace
}  // namespace fuzzydb
