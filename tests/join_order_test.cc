#include "engine/join_order.h"

#include <gtest/gtest.h>

#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

TEST(JoinOrderPlanTest, SingleLevelTrivial) {
  ChainStats stats;
  stats.cardinality = {100};
  const ChainJoinOrder order = PlanChainJoinOrder(stats);
  EXPECT_EQ(order.levels, std::vector<size_t>({0}));
  EXPECT_DOUBLE_EQ(order.estimated_cost, 0.0);
}

TEST(JoinOrderPlanTest, IntervalSizeEstimate) {
  ChainStats stats;
  stats.cardinality = {10, 20, 30};
  stats.selectivity = {0.5, 0.1};
  EXPECT_DOUBLE_EQ(EstimateIntervalSize(stats, 0, 0), 10);
  EXPECT_DOUBLE_EQ(EstimateIntervalSize(stats, 0, 1), 10 * 20 * 0.5);
  EXPECT_DOUBLE_EQ(EstimateIntervalSize(stats, 1, 2), 20 * 30 * 0.1);
  EXPECT_DOUBLE_EQ(EstimateIntervalSize(stats, 0, 2),
                   10 * 20 * 30 * 0.5 * 0.1);
}

TEST(JoinOrderPlanTest, StartsAtTheSelectiveEnd) {
  // A highly selective link at the inner end: joining 1-2 first produces
  // a tiny intermediate; joining 0-1 first a huge one.
  ChainStats stats;
  stats.cardinality = {1000, 1000, 1000};
  stats.selectivity = {1.0, 1e-5};  // link 0-1 dense, link 1-2 selective
  const ChainJoinOrder order = PlanChainJoinOrder(stats);
  ASSERT_EQ(order.levels.size(), 3u);
  // The first join performed must be across the selective link: the
  // first two levels joined are {1, 2} in some order.
  const size_t a = order.levels[0], b = order.levels[1];
  EXPECT_TRUE((a == 1 && b == 2) || (a == 2 && b == 1))
      << "order: " << a << "," << b << "," << order.levels[2];
}

TEST(JoinOrderPlanTest, CostPrefersCheaperIntermediates) {
  ChainStats dense_first;
  dense_first.cardinality = {100, 100, 100, 100};
  dense_first.selectivity = {0.5, 0.01, 0.5};
  const ChainJoinOrder order = PlanChainJoinOrder(dense_first);
  // Optimal: build around the middle selective link first.
  ASSERT_EQ(order.levels.size(), 4u);
  const size_t first = order.levels[0], second = order.levels[1];
  EXPECT_TRUE((first == 1 && second == 2) || (first == 2 && second == 1));
  // Cost equals the DP recomputation.
  EXPECT_GT(order.estimated_cost, 0.0);
}

TEST(JoinOrderPlanTest, OrderIsAlwaysContiguous) {
  for (double s01 : {1e-4, 0.5, 1.0}) {
    for (double s12 : {1e-4, 0.5, 1.0}) {
      for (double s23 : {1e-4, 0.5, 1.0}) {
        ChainStats stats;
        stats.cardinality = {50, 500, 5, 5000};
        stats.selectivity = {s01, s12, s23};
        const ChainJoinOrder order = PlanChainJoinOrder(stats);
        ASSERT_EQ(order.levels.size(), 4u);
        size_t lo = order.levels[0], hi = order.levels[0];
        for (size_t i = 1; i < order.levels.size(); ++i) {
          const size_t level = order.levels[i];
          EXPECT_TRUE(level + 1 == lo || level == hi + 1)
              << "non-contiguous at step " << i;
          lo = std::min(lo, level);
          hi = std::max(hi, level);
        }
        EXPECT_EQ(lo, 0u);
        EXPECT_EQ(hi, 3u);
      }
    }
  }
}

// ---- End-to-end: the planner changes the order, never the answer ----

class ChainOrderEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ChainOrderEquivalenceTest, PlannedAndUnplannedAgree) {
  const uint64_t seed = GetParam();
  Catalog catalog;
  // Skewed sizes so the planner has something to exploit.
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed, "R", 3, 60)));
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed + 1, "S", 2, 8)));
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed + 2, "T3", 2, 60)));

  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(R"sql(
      SELECT R.C0 FROM R WHERE R.C1 IN
        (SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 IN
          (SELECT T3.C0 FROM T3 WHERE T3.C1 = S.C1)))sql",
                                                     catalog));
  ASSERT_EQ(Classify(*bound), QueryType::kChain);

  UnnestingEvaluator planned;
  planned.set_use_join_order_planner(true);
  ASSERT_OK_AND_ASSIGN(Relation with_planner, planned.Evaluate(*bound));
  EXPECT_EQ(planned.last_chain_order().size(), 3u);

  UnnestingEvaluator unplanned;
  unplanned.set_use_join_order_planner(false);
  ASSERT_OK_AND_ASSIGN(Relation without_planner, unplanned.Evaluate(*bound));
  EXPECT_EQ(unplanned.last_chain_order(),
            std::vector<size_t>({0, 1, 2}));

  EXPECT_TRUE(with_planner.EquivalentTo(without_planner, 1e-12));

  // And both agree with the nested-loop execution semantics.
  NaiveEvaluator naive;
  ASSERT_OK_AND_ASSIGN(Relation expected, naive.Evaluate(*bound));
  EXPECT_TRUE(expected.EquivalentTo(with_planner, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainOrderEquivalenceTest,
                         ::testing::Values(61, 62, 63, 64, 65));

}  // namespace
}  // namespace fuzzydb
