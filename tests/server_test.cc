// Server-mode end to end: the wire codec, per-session execution and SET
// options, admission control with RESOURCE_EXHAUSTED shedding, the
// multi-session determinism matrix (concurrent sessions at 1/2/4/8
// engine threads, cache on and off, bit-identical to a serial baseline),
// registry-routed cancellation reaching every in-flight query, and
// graceful server shutdown -- all TSan-clean.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/query_registry.h"
#include "server/admission.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"
#include "shell/shell.h"

namespace fuzzydb {
namespace server {
namespace {

// ---------------------------------------------------------------------
// Wire codec

TEST(WireTest, RoundTripPreservesEveryField) {
  ReplyFrame frame;
  frame.session_id = 42;
  frame.seq = 7;
  frame.status = "CANCELLED";
  frame.error = "Cancelled: a \"quoted\"\nmulti-line\terror \\ with \x01";
  frame.text = "rendered text\n";
  frame.has_answer = true;
  frame.columns = {"name", "sal"};
  frame.rows = {{"'ann'", "[90, 110]"}, {"'bob'", "200"}};
  // 0.91999...882 is one ulp-cluster away from strtod("0.92"): degrees
  // must survive the wire bit-identical, not just to 6 digits.
  frame.degrees = {0.91999999999999882, 1.0};
  frame.elapsed_ms = 12.5;
  frame.queue_wait_ms = 0.25;
  frame.goodbye = true;

  const std::string line = RenderReplyFrame(frame);
  EXPECT_EQ(line.find('\n'), std::string::npos) << line;

  ReplyFrame parsed;
  ASSERT_TRUE(ParseReplyFrame(line, &parsed)) << line;
  EXPECT_EQ(parsed.session_id, frame.session_id);
  EXPECT_EQ(parsed.seq, frame.seq);
  EXPECT_EQ(parsed.status, frame.status);
  EXPECT_EQ(parsed.error, frame.error);
  EXPECT_EQ(parsed.text, frame.text);
  EXPECT_TRUE(parsed.has_answer);
  EXPECT_EQ(parsed.columns, frame.columns);
  EXPECT_EQ(parsed.rows, frame.rows);
  EXPECT_EQ(parsed.degrees, frame.degrees);
  EXPECT_DOUBLE_EQ(parsed.elapsed_ms, frame.elapsed_ms);
  EXPECT_DOUBLE_EQ(parsed.queue_wait_ms, frame.queue_wait_ms);
  EXPECT_TRUE(parsed.goodbye);
}

TEST(WireTest, RoundTripOfMinimalFrame) {
  ReplyFrame frame;
  frame.session_id = 1;
  frame.seq = 1;
  const std::string line = RenderReplyFrame(frame);
  ReplyFrame parsed;
  ASSERT_TRUE(ParseReplyFrame(line, &parsed)) << line;
  EXPECT_EQ(parsed.status, "OK");
  EXPECT_FALSE(parsed.has_answer);
  EXPECT_FALSE(parsed.goodbye);
  EXPECT_TRUE(parsed.rows.empty());
}

TEST(WireTest, RejectsMalformedFrames) {
  ReplyFrame frame;
  for (const char* bad :
       {"", "{", "[1, 2]", "{\"status\":}", "{\"status\":\"OK\"",
        "{\"unknown_key\":1}", "{\"rows\":[[1]]}", "not json at all"}) {
    EXPECT_FALSE(ParseReplyFrame(bad, &frame)) << bad;
  }
}

// ---------------------------------------------------------------------
// Sessions

TEST(SessionTest, ExecutesStatementsAndCapturesAnswers) {
  Session session(5, SessionDefaults{}, /*fair_share_budget=*/0);
  ReplyFrame frame =
      session.Execute("CREATE TABLE emp (name STRING, sal FUZZY);");
  EXPECT_EQ(frame.status, "OK");
  EXPECT_EQ(frame.session_id, 5u);
  EXPECT_EQ(frame.seq, 1u);
  EXPECT_FALSE(frame.has_answer);

  EXPECT_EQ(
      session.Execute("INSERT INTO emp VALUES ('ann', ABOUT(100, 10));")
          .status,
      "OK");
  EXPECT_EQ(
      session.Execute("INSERT INTO emp VALUES ('bob', ABOUT(200, 10));")
          .status,
      "OK");

  frame = session.Execute(
      "SELECT name FROM emp WHERE sal > ABOUT(150, 5) WITH D >= 0.3;");
  EXPECT_EQ(frame.status, "OK");
  EXPECT_EQ(frame.seq, 4u);
  ASSERT_TRUE(frame.has_answer);
  ASSERT_EQ(frame.columns.size(), 1u);
  EXPECT_EQ(frame.columns[0], "name");
  ASSERT_EQ(frame.rows.size(), 1u);
  EXPECT_EQ(frame.rows[0][0], "'bob'");
  ASSERT_EQ(frame.degrees.size(), 1u);
  EXPECT_EQ(frame.degrees[0], 1.0);
  EXPECT_EQ(session.statements(), 4u);
  EXPECT_EQ(session.errors(), 0u);
}

TEST(SessionTest, SetOptionsValidatedAndApplied) {
  Session session(1, SessionDefaults{}, /*fair_share_budget=*/0);
  ReplyFrame frame = session.Execute("SET batch_size 256;");
  EXPECT_EQ(frame.status, "OK");
  EXPECT_EQ(frame.text, "-- set batch_size=256\n");
  EXPECT_EQ(session.Execute("SET cache off").status, "OK");
  EXPECT_EQ(session.Execute("SET threads 2").status, "OK");
  EXPECT_EQ(session.Execute("SET slow_query_ms 5.5").status, "OK");
  EXPECT_EQ(session.Execute("SET memory_budget 64m").status, "OK");

  EXPECT_EQ(session.Execute("SET batch_size banana").status,
            "INVALID_ARGUMENT");
  EXPECT_EQ(session.Execute("SET cache maybe").status, "INVALID_ARGUMENT");
  EXPECT_EQ(session.Execute("SET nonsense 1").status, "INVALID_ARGUMENT");
  EXPECT_EQ(session.Execute("SET batch_size").status, "INVALID_ARGUMENT");
  EXPECT_EQ(session.errors(), 4u);
}

TEST(SessionTest, ErrorsCarryMachineReadableStatus) {
  Session session(1, SessionDefaults{}, /*fair_share_budget=*/0);
  ReplyFrame frame = session.Execute("SELEKT nonsense;");
  EXPECT_EQ(frame.status, "PARSE_ERROR");
  EXPECT_FALSE(frame.error.empty());

  frame = session.Execute("SELECT x FROM nosuch;");
  EXPECT_EQ(frame.status, "NOT_FOUND");

  EXPECT_EQ(session.Execute("CREATE TABLE t (x FUZZY);").status, "OK");
  frame = session.Execute("SELECT nope FROM t;");
  EXPECT_EQ(frame.status, "BIND_ERROR");

  frame = session.Execute("DROP TABLE nosuch;");
  EXPECT_EQ(frame.status, "NOT_FOUND");
  EXPECT_EQ(session.errors(), 4u);
}

TEST(SessionTest, SessionsAreIsolated) {
  Session a(1, SessionDefaults{}, 0);
  Session b(2, SessionDefaults{}, 0);
  EXPECT_EQ(a.Execute("CREATE TABLE t (x FUZZY);").status, "OK");
  // Same name in another session: no clash, separate catalogs.
  EXPECT_EQ(b.Execute("CREATE TABLE t (x FUZZY);").status, "OK");
  EXPECT_EQ(a.Execute("INSERT INTO t VALUES (1);").status, "OK");
  const ReplyFrame in_a = a.Execute("SELECT x FROM t WITH D >= 0;");
  const ReplyFrame in_b = b.Execute("SELECT x FROM t WITH D >= 0;");
  ASSERT_TRUE(in_a.has_answer);
  ASSERT_TRUE(in_b.has_answer);
  EXPECT_EQ(in_a.rows.size(), 1u);
  EXPECT_EQ(in_b.rows.size(), 0u);
}

TEST(SessionTest, FairShareClampsMemoryBudget) {
  // fair share 1 MiB: the session may ask for less, but never more --
  // one greedy SET cannot claim the whole process budget.
  Session session(1, SessionDefaults{}, /*fair_share_budget=*/1 << 20);
  EXPECT_EQ(session.effective_memory_budget(), 1u << 20);  // clamp at start
  EXPECT_EQ(session.Execute("SET memory_budget 1g").status, "OK");
  EXPECT_EQ(session.effective_memory_budget(), 1u << 20);  // clamped down
  EXPECT_EQ(session.Execute("SET memory_budget 64k").status, "OK");
  EXPECT_EQ(session.effective_memory_budget(), 64u << 10);  // under share

  Session unconstrained(2, SessionDefaults{}, /*fair_share_budget=*/0);
  EXPECT_EQ(unconstrained.Execute("SET memory_budget 1g").status, "OK");
  EXPECT_EQ(unconstrained.effective_memory_budget(), 1u << 30);
}

// ---------------------------------------------------------------------
// Admission control

TEST(AdmissionTest, ShedsWhenQueueFullAndDrainsOnShutdown) {
  AdmissionController admission({/*workers=*/1, /*queue_depth=*/1,
                                 /*memory_budget_total=*/0});
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};

  // Occupy the single worker...
  ASSERT_TRUE(admission.Submit([&](double) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    ran.fetch_add(1);
  }));
  // Wait until the worker picked the job up (the queue is empty again).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    // ...then fill the one queue slot; dup submissions must shed.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (admission.Submit([&](double) { ran.fetch_add(1); })) break;
  }
  // The queue now holds one job; the next submission is shed.
  bool shed = false;
  for (int i = 0; i < 3; ++i) {
    if (!admission.Submit([&](double) { ran.fetch_add(1); })) {
      shed = true;
      break;
    }
  }
  EXPECT_TRUE(shed);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // Shutdown drains everything that was admitted: every admitted job
  // runs exactly once, nothing hangs.
  admission.Shutdown();
  EXPECT_GE(ran.load(), 2);
}

TEST(AdmissionTest, FairShareSplitsBudgetAcrossWorkers) {
  AdmissionController admission({/*workers=*/4, /*queue_depth=*/8,
                                 /*memory_budget_total=*/400});
  EXPECT_EQ(admission.fair_share_budget(), 100u);
  AdmissionController unconstrained({2, 4, 0});
  EXPECT_EQ(unconstrained.fair_share_budget(), 0u);
}

// ---------------------------------------------------------------------
// Multi-session determinism matrix

// The seeded per-session workload: DDL, inserts, then fuzzy selects
// including a nested (type J) query -- the same shape
// tools/stress_client.py drives over TCP.
std::vector<std::string> MatrixWorkload() {
  std::vector<std::string> lines = {
      "CREATE TABLE emp (name STRING, sal FUZZY, dept STRING);",
      "CREATE TABLE dept (dname STRING, budget FUZZY);",
  };
  for (int d = 0; d < 3; ++d) {
    lines.push_back("INSERT INTO dept VALUES ('d" + std::to_string(d) +
                    "', ABOUT(" + std::to_string(100 + 50 * d) + ", 25));");
  }
  for (int r = 0; r < 8; ++r) {
    lines.push_back("INSERT INTO emp VALUES ('e" + std::to_string(r) +
                    "', ABOUT(" + std::to_string(80 + 17 * r) + ", 15), 'd" +
                    std::to_string(r % 3) + "');");
  }
  uint32_t state = 0x2545F491u;
  for (int i = 0; i < 12; ++i) {
    state = state * 1103515245u + 12345u;
    const int threshold = 90 + static_cast<int>((state >> 8) % 120u);
    const int dept = static_cast<int>((state >> 4) % 3u);
    switch (state % 3u) {
      case 0:
        lines.push_back("SELECT name FROM emp WHERE sal > ABOUT(" +
                        std::to_string(threshold) +
                        ", 10) WITH D >= 0.5;");
        break;
      case 1:
        lines.push_back("SELECT name FROM emp WHERE sal > ABOUT(" +
                        std::to_string(threshold) + ", 10) AND dept = 'd" +
                        std::to_string(dept) + "' WITH D >= 0.3;");
        break;
      default:
        lines.push_back(
            "SELECT name FROM emp WHERE sal > ANY (SELECT budget FROM "
            "dept WHERE dname = 'd" +
            std::to_string(dept) + "') WITH D >= 0.3;");
    }
  }
  return lines;
}

// The fields that must be bit-identical between a served session and
// the serial shell (ids and timings legitimately differ).
struct NormalizedFrame {
  std::string status;
  std::string text;
  bool has_answer;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  std::vector<double> degrees;

  bool operator==(const NormalizedFrame& other) const {
    return status == other.status && text == other.text &&
           has_answer == other.has_answer && columns == other.columns &&
           rows == other.rows && degrees == other.degrees;
  }
};

std::vector<NormalizedFrame> RunWorkload(size_t threads, bool cache) {
  Session session(1, SessionDefaults{}, 0);
  EXPECT_EQ(
      session.Execute("SET threads " + std::to_string(threads)).status,
      "OK");
  EXPECT_EQ(
      session.Execute(std::string("SET cache ") + (cache ? "on" : "off"))
          .status,
      "OK");
  std::vector<NormalizedFrame> frames;
  for (const std::string& line : MatrixWorkload()) {
    const ReplyFrame frame = session.Execute(line);
    frames.push_back(NormalizedFrame{frame.status, frame.text,
                                     frame.has_answer, frame.columns,
                                     frame.rows, frame.degrees});
  }
  return frames;
}

TEST(DeterminismTest, ConcurrentSessionsMatchSerialBaselineAtEveryConfig) {
  // Serial baseline once per engine-thread count, cache off (the pure
  // computation) and on (cache hits must be indistinguishable).
  for (const bool cache : {false, true}) {
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      const std::vector<NormalizedFrame> baseline =
          RunWorkload(threads, cache);
      for (const NormalizedFrame& frame : baseline) {
        EXPECT_EQ(frame.status, "OK") << frame.text;
      }
      constexpr int kClients = 4;
      std::vector<std::vector<NormalizedFrame>> results(kClients);
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&results, c, threads, cache] {
          results[c] = RunWorkload(threads, cache);
        });
      }
      for (std::thread& thread : clients) thread.join();
      for (int c = 0; c < kClients; ++c) {
        ASSERT_EQ(results[c].size(), baseline.size());
        for (size_t i = 0; i < baseline.size(); ++i) {
          EXPECT_TRUE(results[c][i] == baseline[i])
              << "client " << c << " line " << i << " threads " << threads
              << " cache " << cache << "\n served: " << results[c][i].text
              << "\n serial: " << baseline[i].text;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Registry-routed cancellation (the g_active_query regression)

// Before cancellation was routed through ActiveQueryRegistry, the
// SIGINT path latched a single active QueryContext -- with two queries
// in flight one of them was uncancellable. This drives two concurrent
// sessions into long queries and requires ONE CancelActiveQuery() call
// to land on both.
TEST(CancelTest, CancelAllReachesEveryInFlightQuery) {
  constexpr int kQueries = 2;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kQueries; ++i) {
    sessions.push_back(
        std::make_unique<Session>(i + 1, SessionDefaults{}, 0));
    // One all-pairs group: the type J query degenerates to ~n^2 pairs,
    // slow enough (seconds) that the cancel below lands mid-flight.
    ASSERT_EQ(sessions[i]->Execute(".gen typej 7 8000 8000 8000").status,
              "OK");
  }
  const size_t before = ActiveQueryRegistry::Global().Size();
  std::vector<ReplyFrame> frames(kQueries);
  std::vector<std::thread> runners;
  runners.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    runners.emplace_back([&frames, &sessions, i] {
      frames[i] = sessions[i]->Execute(
          "SELECT R.X FROM R WHERE R.Y IN "
          "(SELECT S.Z FROM S WHERE S.V = R.U);");
    });
  }
  // Wait until both queries are registered (i.e. actually executing).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ActiveQueryRegistry::Global().Size() < before + kQueries &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(ActiveQueryRegistry::Global().Size(), before + kQueries)
      << "queries never registered";
  EXPECT_TRUE(Shell::CancelActiveQuery());
  for (std::thread& thread : runners) thread.join();
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(frames[i].status, "CANCELLED")
        << "query " << i << ": " << frames[i].error;
  }
  // The interrupt epoch is consumed: fresh queries run normally.
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(sessions[i]
                  ->Execute("SELECT R.X FROM R WHERE R.X > 1000000;")
                  .status,
              "OK");
  }
}

// ---------------------------------------------------------------------
// The TCP server end to end

// Minimal line-protocol client for the tests.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool SendLine(const std::string& line) {
    const std::string data = line + "\n";
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + written,
                               data.size() - written, MSG_NOSIGNAL);
      if (n <= 0) return false;
      written += static_cast<size_t>(n);
    }
    return true;
  }

  bool ReadFrame(ReplyFrame* frame) {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return ParseReplyFrame(line, frame);
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Sends and reads the paired reply; retries RESOURCE_EXHAUSTED (for
  /// setup statements that must eventually land on a saturated server).
  bool Roundtrip(const std::string& line, ReplyFrame* frame,
                 bool retry_shed = false) {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      if (!SendLine(line) || !ReadFrame(frame)) return false;
      if (!retry_shed || frame->status != "RESOURCE_EXHAUSTED") {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  /// EOF probe: true when the server closed the connection.
  bool AtEof() {
    char byte;
    return ::recv(fd_, &byte, 1, 0) <= 0;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(ServerTest, AnswersQueriesOverTcp) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ReplyFrame frame;
  ASSERT_TRUE(
      client.Roundtrip("CREATE TABLE t (name STRING, v FUZZY);", &frame));
  EXPECT_EQ(frame.status, "OK");
  ASSERT_TRUE(client.Roundtrip(
      "INSERT INTO t VALUES ('a', ABOUT(10, 2));", &frame));
  EXPECT_EQ(frame.status, "OK");
  ASSERT_TRUE(client.Roundtrip(
      "SELECT name FROM t WHERE v > ABOUT(9, 1) WITH D >= 0.1;", &frame));
  EXPECT_EQ(frame.status, "OK");
  ASSERT_TRUE(frame.has_answer);
  ASSERT_EQ(frame.rows.size(), 1u);
  EXPECT_EQ(frame.rows[0][0], "'a'");
  EXPECT_GE(frame.queue_wait_ms, 0.0);

  // Sessions are visible to any session through sys.sessions.
  ASSERT_TRUE(client.Roundtrip(
      "SELECT id, state FROM sys.sessions WITH D >= 0;", &frame));
  EXPECT_EQ(frame.status, "OK") << frame.error;
  ASSERT_TRUE(frame.has_answer);
  EXPECT_GE(frame.rows.size(), 1u);

  // .quit closes just this session; the server stays up.
  ASSERT_TRUE(client.Roundtrip(".quit", &frame));
  EXPECT_TRUE(frame.goodbye);
  EXPECT_TRUE(client.AtEof());

  TestClient second;
  ASSERT_TRUE(second.Connect(server.port()));
  ASSERT_TRUE(second.Roundtrip(".tables", &frame));
  EXPECT_EQ(frame.status, "OK");
  server.Stop();
}

TEST(ServerTest, ShedsOverloadAsResourceExhaustedAndStaysHealthy) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<TestClient>());
    ASSERT_TRUE(clients.back()->Connect(server.port()));
    ReplyFrame frame;
    // Setup competes for the single worker: retry shed replies.
    ASSERT_TRUE(clients.back()->Roundtrip(".gen typej 7 5000 5000 5000",
                                          &frame, /*retry_shed=*/true));
    ASSERT_EQ(frame.status, "OK") << frame.error;
  }

  // All clients fire a ~1s query at once: 1 executes, 1 queues, the
  // rest must shed immediately as RESOURCE_EXHAUSTED -- never hang.
  std::vector<std::string> statuses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&clients, &statuses, i] {
      ReplyFrame frame;
      if (clients[i]->Roundtrip(
              "SELECT R.X FROM R WHERE R.Y IN "
              "(SELECT S.Z FROM S WHERE S.V = R.U);",
              &frame)) {
        statuses[i] = frame.status;
      } else {
        statuses[i] = "PROTOCOL_ERROR";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(statuses[i] == "OK" || statuses[i] == "RESOURCE_EXHAUSTED")
        << "client " << i << ": " << statuses[i];
    if (statuses[i] == "OK") ++ok;
    if (statuses[i] == "RESOURCE_EXHAUSTED") ++shed;
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1);

  // Shedding is load shedding, not damage: the server still answers.
  ReplyFrame frame;
  ASSERT_TRUE(clients[0]->Roundtrip(".tables", &frame,
                                    /*retry_shed=*/true));
  EXPECT_EQ(frame.status, "OK");
  server.Stop();
}

TEST(ServerTest, GracefulStopClosesSessionsAndIsIdempotent) {
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  TestClient a;
  TestClient b;
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  ReplyFrame frame;
  ASSERT_TRUE(a.Roundtrip("CREATE TABLE t (x FUZZY);", &frame));
  EXPECT_EQ(frame.status, "OK");
  ASSERT_TRUE(b.Roundtrip(".tables", &frame));
  EXPECT_EQ(frame.status, "OK");
  EXPECT_EQ(server.active_sessions(), 2u);

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.active_sessions(), 0u);
  EXPECT_TRUE(a.AtEof());
  EXPECT_TRUE(b.AtEof());
  server.Stop();  // idempotent

  // The port is released: a new server can bind it right away.
  ServerConfig again;
  again.port = server.port();
  Server second(again);
  EXPECT_TRUE(second.Start().ok());
  second.Stop();
}

}  // namespace
}  // namespace server
}  // namespace fuzzydb
