// Unit tests of the shared degree algebra (engine/semantics.h) and the
// alpha-cut accessors underpinning the threshold pushdown.
#include "engine/semantics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

using testing_util::MakeSet;

TEST(InDegreeTest, MaxOfMinOverTheSet) {
  // d(v IN T) = max_z min(mu_T(z), d(v = z)) -- the Example 4.1 algebra.
  const Relation t = MakeSet("T", {{Trapezoid::Triangle(35, 40, 45), 0.4},
                                   {Trapezoid(62, 67, 150, 150), 1.0}});
  // "about 60K" vs T: min(0.4, 0) vs min(1, 0.3) -> 0.3.
  EXPECT_DOUBLE_EQ(
      InDegree(Value::Fuzzy(Trapezoid::Triangle(55, 60, 65)), t, nullptr),
      0.3);
  // "medium high" vs T: -> 0.7.
  EXPECT_DOUBLE_EQ(
      InDegree(Value::Fuzzy(Trapezoid(55, 60, 64, 69)), t, nullptr), 0.7);
  // Empty set.
  const Relation empty = MakeSet("T", {});
  EXPECT_DOUBLE_EQ(InDegree(Value::Number(5), empty, nullptr), 0.0);
}

TEST(InDegreeTest, SetMembershipCapsTheDegree) {
  const Relation t = MakeSet("T", {{Trapezoid::Crisp(5), 0.3}});
  EXPECT_DOUBLE_EQ(InDegree(Value::Number(5), t, nullptr), 0.3);
}

TEST(AllDegreeTest, EmptySetIsFullySatisfied) {
  const Relation empty = MakeSet("T", {});
  EXPECT_DOUBLE_EQ(
      AllDegree(Value::Number(5), CompareOp::kLe, empty, nullptr), 1.0);
}

TEST(AllDegreeTest, WorstViolatorDecides) {
  const Relation t = MakeSet("T", {{Trapezoid::Crisp(10), 1.0},
                                   {Trapezoid::Crisp(3), 0.6}});
  // v = 5: 5 <= 10 holds fully; 5 <= 3 fails, violation min(0.6, 1) = 0.6.
  EXPECT_DOUBLE_EQ(
      AllDegree(Value::Number(5), CompareOp::kLe, t, nullptr), 0.4);
  // v = 2: no violations.
  EXPECT_DOUBLE_EQ(
      AllDegree(Value::Number(2), CompareOp::kLe, t, nullptr), 1.0);
}

TEST(SomeDegreeTest, BestWitnessDecides) {
  const Relation t = MakeSet("T", {{Trapezoid::Crisp(10), 0.5},
                                   {Trapezoid::Crisp(3), 1.0}});
  EXPECT_DOUBLE_EQ(
      SomeDegree(Value::Number(5), CompareOp::kLt, t, nullptr), 0.5);
  EXPECT_DOUBLE_EQ(
      SomeDegree(Value::Number(99), CompareOp::kLt, t, nullptr), 0.0);
  const Relation empty = MakeSet("T", {});
  EXPECT_DOUBLE_EQ(
      SomeDegree(Value::Number(5), CompareOp::kLt, empty, nullptr), 0.0);
}

TEST(AlphaCutTest, BoundsInterpolateBetweenSupportAndCore) {
  const Trapezoid t(10, 20, 30, 40);
  EXPECT_DOUBLE_EQ(t.AlphaCutBegin(0), 10);
  EXPECT_DOUBLE_EQ(t.AlphaCutEnd(0), 40);
  EXPECT_DOUBLE_EQ(t.AlphaCutBegin(1), 20);
  EXPECT_DOUBLE_EQ(t.AlphaCutEnd(1), 30);
  EXPECT_DOUBLE_EQ(t.AlphaCutBegin(0.5), 15);
  EXPECT_DOUBLE_EQ(t.AlphaCutEnd(0.5), 35);
}

TEST(AlphaCutTest, CutIntersectionCharacterizesThresholdedEquality) {
  // EqualityDegree(x, y) >= z  iff  the closed z-cuts intersect -- the
  // invariant the thresholded merge window relies on.
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    double c[4];
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 24)) / 2;
    std::sort(c, c + 4);
    const Trapezoid x(c[0], c[1], c[2], c[3]);
    for (double& v : c) v = static_cast<double>(rng.UniformInt(0, 24)) / 2;
    std::sort(c, c + 4);
    const Trapezoid y(c[0], c[1], c[2], c[3]);
    for (double z : {0.25, 0.5, 0.75}) {
      const bool cuts_intersect =
          x.AlphaCutBegin(z) <= y.AlphaCutEnd(z) &&
          y.AlphaCutBegin(z) <= x.AlphaCutEnd(z);
      const bool degree_reaches = EqualityDegree(x, y) >= z - 1e-12;
      EXPECT_EQ(cuts_intersect, degree_reaches)
          << x.ToString() << " vs " << y.ToString() << " at z=" << z;
    }
  }
}

TEST(ApplyOrderByTest, SortsByColumnAndDegree) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy}});
  ASSERT_OK(r.Append(Tuple({Value::Number(3)}, 0.5)));
  ASSERT_OK(r.Append(Tuple({Value::Number(1)}, 0.9)));
  ASSERT_OK(r.Append(Tuple({Value::Number(2)}, 0.7)));

  sql::BoundOrderItem by_value;
  by_value.output_column = 0;
  ApplyOrderBy({by_value}, &r);
  EXPECT_DOUBLE_EQ(r.TupleAt(0).ValueAt(0).AsFuzzy().CrispValue(), 1.0);
  EXPECT_DOUBLE_EQ(r.TupleAt(2).ValueAt(0).AsFuzzy().CrispValue(), 3.0);

  sql::BoundOrderItem by_degree;
  by_degree.by_degree = true;
  by_degree.descending = true;
  ApplyOrderBy({by_degree}, &r);
  EXPECT_DOUBLE_EQ(r.TupleAt(0).degree(), 0.9);
  EXPECT_DOUBLE_EQ(r.TupleAt(2).degree(), 0.5);
}

}  // namespace
}  // namespace fuzzydb
