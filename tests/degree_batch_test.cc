// Property tests for the batch satisfaction-degree kernels: every
// batch kernel must return bit-identical doubles to its scalar
// counterpart, for every comparator, every operand shape, and every
// trapezoid family (random, crisp, zero-width cores, vertical edges,
// shared corners). This is the contract that lets the engine switch
// between the scalar and batch paths without changing any query
// result (see docs/architecture.md, "Batch execution").

#include "fuzzy/degree_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fuzzy/degree.h"
#include "fuzzy/interval_order.h"
#include "fuzzy/trapezoid_batch.h"
#include "relational/column_gather.h"
#include "relational/tuple.h"

namespace fuzzydb {
namespace {

constexpr double kApproxTolerance = 25.0;

/// Bitwise equality: distinguishes +0.0 / -0.0 and would catch any
/// reassociated arithmetic, which plain == would let through for NaN
/// or for equal-but-differently-computed values it can't distinguish.
bool SameBits(double x, double y) {
  return std::memcmp(&x, &y, sizeof(double)) == 0;
}

/// Draws one trapezoid from a mix of shape families so the sweep hits
/// the kernels' edge cases, not just generic sorted corners:
/// crisp points, intervals, zero-width cores, vertical edges, and
/// corners shared with a previously drawn trapezoid.
Trapezoid RandomTrapezoid(Rng& rng, const std::vector<Trapezoid>& prior) {
  const int family = static_cast<int>(rng.UniformInt(0, 7));
  switch (family) {
    case 0:  // crisp point
      return Trapezoid::Crisp(rng.UniformDouble(0.0, 1000.0));
    case 1: {  // rectangular interval (both edges vertical)
      const double lo = rng.UniformDouble(0.0, 1000.0);
      return Trapezoid::Interval(lo, lo + rng.UniformDouble(0.0, 100.0));
    }
    case 2: {  // triangle (zero-width core)
      const double peak = rng.UniformDouble(0.0, 1000.0);
      return Trapezoid::Triangle(peak - rng.UniformDouble(0.0, 50.0), peak,
                                 peak + rng.UniformDouble(0.0, 50.0));
    }
    case 3: {  // one vertical edge
      const double a = rng.UniformDouble(0.0, 1000.0);
      const double c = a + rng.UniformDouble(0.0, 50.0);
      const double d = c + rng.UniformDouble(0.0, 50.0);
      return rng.Bernoulli(0.5) ? Trapezoid(a, a, c, d)
                                : Trapezoid(a, c, d, d);
    }
    case 4: {  // corners shared with an earlier trapezoid
      if (!prior.empty()) {
        const Trapezoid& t = prior[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(prior.size()) - 1))];
        const double shift = rng.Bernoulli(0.5) ? 0.0 : t.d() - t.a();
        return Trapezoid(t.a() + shift, t.b() + shift, t.c() + shift,
                         t.d() + shift);
      }
      break;
    }
    default:
      break;
  }
  // Generic sorted corners.
  double v[4];
  for (double& x : v) x = rng.UniformDouble(0.0, 1000.0);
  std::sort(v, v + 4);
  return Trapezoid(v[0], v[1], v[2], v[3]);
}

struct PairSweep {
  std::vector<Trapezoid> xs;
  std::vector<Trapezoid> ys;
};

PairSweep MakeSweep(size_t pairs, uint64_t seed) {
  Rng rng(seed);
  PairSweep s;
  s.xs.reserve(pairs);
  s.ys.reserve(pairs);
  for (size_t i = 0; i < pairs; ++i) {
    s.xs.push_back(RandomTrapezoid(rng, s.xs));
    s.ys.push_back(RandomTrapezoid(rng, s.xs));
  }
  return s;
}

constexpr CompareOp kAllOps[] = {
    CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,      CompareOp::kLe,
    CompareOp::kGt, CompareOp::kGe, CompareOp::kApproxEq};

// Runs the sweep through all three operand shapes of
// BatchSatisfactionDegree in chunks of `batch` lanes and compares each
// lane bitwise against the scalar SatisfactionDegree.
void CheckOp(const PairSweep& s, CompareOp op, size_t batch) {
  TrapezoidBatch xs, ys;
  std::vector<double> out(batch);
  size_t checked = 0;
  for (size_t base = 0; base < s.xs.size(); base += batch) {
    const size_t n = std::min(batch, s.xs.size() - base);
    xs.Clear();
    ys.Clear();
    for (size_t i = 0; i < n; ++i) {
      xs.PushBack(s.xs[base + i]);
      ys.PushBack(s.ys[base + i]);
    }

    // batch-vs-batch
    BatchSatisfactionDegree(xs, op, ys, kApproxTolerance, out.data());
    for (size_t i = 0; i < n; ++i) {
      const double scalar = SatisfactionDegree(s.xs[base + i], op,
                                               s.ys[base + i], kApproxTolerance);
      ASSERT_TRUE(SameBits(out[i], scalar))
          << CompareOpName(op) << " lane " << base + i << ": batch=" << out[i]
          << " scalar=" << scalar;
      ++checked;
    }

    // batch-vs-scalar: every lane of xs against one probe y.
    const Trapezoid& probe = s.ys[base];
    BatchSatisfactionDegree(xs, op, probe, kApproxTolerance, out.data());
    for (size_t i = 0; i < n; ++i) {
      const double scalar =
          SatisfactionDegree(s.xs[base + i], op, probe, kApproxTolerance);
      ASSERT_TRUE(SameBits(out[i], scalar))
          << CompareOpName(op) << " (batch,scalar) lane " << base + i;
    }

    // scalar-vs-batch: one probe x against every lane of ys.
    const Trapezoid& left = s.xs[base];
    BatchSatisfactionDegree(left, op, ys, kApproxTolerance, out.data());
    for (size_t i = 0; i < n; ++i) {
      const double scalar =
          SatisfactionDegree(left, op, s.ys[base + i], kApproxTolerance);
      ASSERT_TRUE(SameBits(out[i], scalar))
          << CompareOpName(op) << " (scalar,batch) lane " << base + i;
    }
  }
  EXPECT_EQ(checked, s.xs.size());
}

TEST(DegreeBatchTest, TenThousandSeededPairsBitIdentical) {
  const PairSweep sweep = MakeSweep(10000, 0x5eedu);
  for (CompareOp op : kAllOps) {
    CheckOp(sweep, op, TrapezoidBatch::kCapacity);
  }
}

TEST(DegreeBatchTest, RaggedBatchSizesBitIdentical) {
  // Partial and single-lane batches exercise the selection-vector tail
  // handling (batch sizes that never divide the sweep).
  const PairSweep sweep = MakeSweep(1000, 0xfeedu);
  for (CompareOp op : kAllOps) {
    CheckOp(sweep, op, 1);
    CheckOp(sweep, op, 7);
    CheckOp(sweep, op, 64);
  }
}

TEST(DegreeBatchTest, OrderedSupportFastPathsMatchSlowSweep) {
  // Hand-picked pairs that land exactly on the batch kernels' fast-path
  // boundaries: disjoint, touching (xd == ya), nested, and shared-edge
  // supports, plus crisp-vs-fuzzy mixes on both sides.
  const std::vector<std::pair<Trapezoid, Trapezoid>> pairs = {
      {Trapezoid(0, 1, 2, 3), Trapezoid(5, 6, 7, 8)},    // disjoint
      {Trapezoid(5, 6, 7, 8), Trapezoid(0, 1, 2, 3)},    // disjoint, swapped
      {Trapezoid(0, 1, 2, 3), Trapezoid(3, 4, 5, 6)},    // touching supports
      {Trapezoid(0, 1, 2, 3), Trapezoid(2, 2, 4, 4)},    // overlap, vertical
      {Trapezoid(0, 0, 3, 3), Trapezoid(1, 1, 2, 2)},    // nested intervals
      {Trapezoid::Crisp(2), Trapezoid(0, 1, 3, 4)},      // crisp in core
      {Trapezoid::Crisp(2), Trapezoid::Crisp(2)},        // equal crisp
      {Trapezoid::Crisp(2), Trapezoid::Crisp(3)},        // ordered crisp
      {Trapezoid(0, 1, 1, 2), Trapezoid(1, 1, 1, 2)},    // shared corner
      {Trapezoid(0, 2, 2, 4), Trapezoid(2, 2, 2, 2)},    // crisp at peak
  };
  TrapezoidBatch xs, ys;
  for (const auto& [x, y] : pairs) {
    xs.PushBack(x);
    ys.PushBack(y);
  }
  double out[TrapezoidBatch::kCapacity];
  for (CompareOp op : kAllOps) {
    BatchSatisfactionDegree(xs, op, ys, kApproxTolerance, out);
    for (size_t i = 0; i < pairs.size(); ++i) {
      const double scalar = SatisfactionDegree(pairs[i].first, op,
                                               pairs[i].second, kApproxTolerance);
      ASSERT_TRUE(SameBits(out[i], scalar))
          << CompareOpName(op) << " pair " << i;
    }
  }
}

TEST(DegreeBatchTest, IntervalOrderBatchMatchesScalar) {
  const PairSweep sweep = MakeSweep(2000, 0xabcdu);
  TrapezoidBatch xs;
  int cmp[TrapezoidBatch::kCapacity];
  unsigned char intersect[TrapezoidBatch::kCapacity];
  unsigned char before[TrapezoidBatch::kCapacity];
  for (size_t base = 0; base < sweep.xs.size();
       base += TrapezoidBatch::kCapacity) {
    const size_t n =
        std::min<size_t>(TrapezoidBatch::kCapacity, sweep.xs.size() - base);
    xs.Clear();
    for (size_t i = 0; i < n; ++i) xs.PushBack(sweep.xs[base + i]);
    const Trapezoid& probe = sweep.ys[base];
    BatchCompareIntervalOrder(xs, probe, cmp);
    BatchSupportsIntersect(xs, probe, intersect);
    BatchSupportEntirelyBefore(xs, probe, before);
    for (size_t i = 0; i < n; ++i) {
      const Trapezoid& x = sweep.xs[base + i];
      EXPECT_EQ(cmp[i], CompareIntervalOrder(x, probe));
      EXPECT_EQ(intersect[i] != 0, SupportsIntersect(x, probe));
      EXPECT_EQ(before[i] != 0, SupportEntirelyBefore(x, probe));
    }
  }
}

TEST(DegreeBatchTest, GatherFuzzyColumnRoundTrips) {
  const PairSweep sweep = MakeSweep(100, 0x9999u);
  std::vector<Tuple> tuples;
  for (const Trapezoid& t : sweep.xs) {
    std::vector<Value> values;
    values.emplace_back(Value::Fuzzy(t));
    tuples.emplace_back(std::move(values), 1.0);
  }
  std::vector<const Tuple*> ptrs;
  for (const Tuple& t : tuples) ptrs.push_back(&t);

  TrapezoidBatch batch;
  ASSERT_TRUE(GatherFuzzyColumn(ptrs.data(), ptrs.size(), 0, &batch));
  ASSERT_EQ(batch.size(), sweep.xs.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.At(i), sweep.xs[i]);
  }

  // A null value poisons the gather.
  std::vector<Value> null_values;
  null_values.emplace_back(Value::Null());
  tuples.emplace_back(std::move(null_values), 1.0);
  ptrs.push_back(&tuples.back());
  EXPECT_FALSE(GatherFuzzyColumn(ptrs.data(), ptrs.size(), 0, &batch));
}

TEST(TrapezoidBatchTest, SplatAndAt) {
  TrapezoidBatch batch;
  const Trapezoid t(1, 2, 3, 4);
  batch.Splat(t, 17);
  ASSERT_EQ(batch.size(), 17u);
  for (size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(batch.At(i), t);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace fuzzydb
