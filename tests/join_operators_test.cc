// File-based join operators: the extended merge-join must produce exactly
// the pairs of the nested-loop join, with identical degrees, while reading
// each input page a bounded number of times.
#include <gtest/gtest.h>

#include <map>

#include "engine/executor.h"
#include "engine/merge_join.h"
#include "engine/naive_evaluator.h"
#include "engine/nested_loop_join.h"
#include "fuzzy/interval_order.h"
#include "sort/external_sort.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_join_" + name;
}

/// All emitted pairs as a value->degree map (pairs keyed by the crisp
/// outer id in column 0 and the inner key corners).
using PairMap = std::map<std::pair<double, std::string>, double>;

class JoinOperatorsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinOperatorsTest, MergeJoinMatchesNestedLoopOracle) {
  const uint64_t seed = GetParam();
  WorkloadConfig config;
  config.seed = seed;
  config.num_r = 300;
  config.num_s = 300;
  config.join_fanout = 6;
  config.partial_membership_fraction = 0.5;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  BufferPool pool(16);
  const std::string r_path = TempPath("R" + std::to_string(seed));
  const std::string s_path = TempPath("S" + std::to_string(seed));
  ASSERT_OK_AND_ASSIGN(auto r_file,
                       WriteRelationToFile(dataset.r, r_path, &pool, 128));
  ASSERT_OK_AND_ASSIGN(auto s_file,
                       WriteRelationToFile(dataset.s, s_path, &pool, 128));

  FuzzyJoinSpec spec;
  spec.outer_key = 1;  // R.Y
  spec.inner_key = 0;  // S.Z
  spec.residuals.push_back({2, 1, CompareOp::kEq});  // R.U = S.V

  auto key_of = [](const Tuple& r, const Tuple& s) {
    return std::make_pair(r.ValueAt(0).AsFuzzy().CrispValue(),
                          s.ValueAt(0).AsFuzzy().ToString() + "/" +
                              s.ValueAt(1).AsFuzzy().ToString());
  };

  // Oracle: nested loop.
  PairMap expected;
  IoStats nl_io;
  ASSERT_OK(FileNestedLoopJoin(r_file.get(), s_file.get(), &nl_io, 8, spec,
                               nullptr,
                               [&](const Tuple& r, const Tuple& s, double d) {
                                 auto key = key_of(r, s);
                                 auto [it, fresh] = expected.emplace(key, d);
                                 if (!fresh) it->second = std::max(it->second, d);
                                 return Status::OK();
                               }));
  EXPECT_GT(expected.size(), 0u);

  // Merge join over sorted copies.
  auto less_on = [](size_t col) {
    return TupleLess([col](const Tuple& a, const Tuple& b) {
      return IntervalOrderLess(a.ValueAt(col).AsFuzzy(),
                               b.ValueAt(col).AsFuzzy());
    });
  };
  ASSERT_OK_AND_ASSIGN(
      auto r_sorted,
      ExternalSort(r_file.get(), &pool, less_on(1), TempPath("rs"),
                   TempPath("r_sorted" + std::to_string(seed)), 8, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_sorted,
      ExternalSort(s_file.get(), &pool, less_on(0), TempPath("ss"),
                   TempPath("s_sorted" + std::to_string(seed)), 8, 128));

  PairMap actual;
  CpuStats cpu;
  ASSERT_OK(FileMergeJoin(r_sorted.get(), s_sorted.get(), &pool, spec, &cpu,
                          [&](const Tuple& r, const Tuple& s, double d) {
                            auto key = key_of(r, s);
                            auto [it, fresh] = actual.emplace(key, d);
                            if (!fresh) it->second = std::max(it->second, d);
                            return Status::OK();
                          }));

  EXPECT_EQ(expected.size(), actual.size());
  for (const auto& [key, degree] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << "missing pair for outer " << key.first;
    EXPECT_NEAR(degree, it->second, 1e-12);
  }

  // The merge-join examines far fewer pairs than the full cross product.
  EXPECT_LT(cpu.tuple_pairs,
            static_cast<uint64_t>(config.num_r) * config.num_s / 4);

  r_file.reset();
  s_file.reset();
  r_sorted.reset();
  s_sorted.reset();
  RemoveFileIfExists(r_path);
  RemoveFileIfExists(s_path);
  RemoveFileIfExists(TempPath("r_sorted" + std::to_string(seed)));
  RemoveFileIfExists(TempPath("s_sorted" + std::to_string(seed)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinOperatorsTest,
                         ::testing::Values(21, 22, 23, 24));

TEST(JoinIoTest, MergeJoinReadsEachInputOnceWhenWindowsFit) {
  WorkloadConfig config;
  config.seed = 7;
  config.num_r = 400;
  config.num_s = 400;
  config.join_fanout = 4;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  IoStats io;
  BufferPool pool(32, &io);
  ASSERT_OK_AND_ASSIGN(
      auto r_file, WriteRelationToFile(dataset.r, TempPath("io_r"), &pool, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_file, WriteRelationToFile(dataset.s, TempPath("io_s"), &pool, 128));
  auto less_on = [](size_t col) {
    return TupleLess([col](const Tuple& a, const Tuple& b) {
      return IntervalOrderLess(a.ValueAt(col).AsFuzzy(),
                               b.ValueAt(col).AsFuzzy());
    });
  };
  ASSERT_OK_AND_ASSIGN(auto r_sorted,
                       ExternalSort(r_file.get(), &pool, less_on(1),
                                    TempPath("io_rs"), TempPath("io_rsd"), 8,
                                    128));
  ASSERT_OK_AND_ASSIGN(auto s_sorted,
                       ExternalSort(s_file.get(), &pool, less_on(0),
                                    TempPath("io_ss"), TempPath("io_ssd"), 8,
                                    128));

  pool.Clear();
  pool.ResetStats();
  FuzzyJoinSpec spec;
  spec.outer_key = 1;
  spec.inner_key = 0;
  spec.residuals.push_back({2, 1, CompareOp::kEq});
  ASSERT_OK(FileMergeJoin(r_sorted.get(), s_sorted.get(), &pool, spec,
                          nullptr, [](const Tuple&, const Tuple&, double) {
                            return Status::OK();
                          }));
  // O(b_R + b_S) behaviour: each page fetched exactly once.
  EXPECT_EQ(pool.stats().page_reads,
            r_sorted->NumPages() + s_sorted->NumPages());

  r_file.reset();
  s_file.reset();
  r_sorted.reset();
  s_sorted.reset();
  RemoveFileIfExists(TempPath("io_r"));
  RemoveFileIfExists(TempPath("io_s"));
  RemoveFileIfExists(TempPath("io_rsd"));
  RemoveFileIfExists(TempPath("io_ssd"));
}

TEST(JoinIoTest, NestedLoopIoMatchesFormula) {
  WorkloadConfig config;
  config.seed = 9;
  config.num_r = 500;
  config.num_s = 300;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  BufferPool setup_pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto r_file,
      WriteRelationToFile(dataset.r, TempPath("nl_r"), &setup_pool, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_file,
      WriteRelationToFile(dataset.s, TempPath("nl_s"), &setup_pool, 128));

  const size_t buffer_pages = 4;
  IoStats io;
  FuzzyJoinSpec spec;
  spec.outer_key = 1;
  spec.inner_key = 0;
  ASSERT_OK(FileNestedLoopJoin(r_file.get(), s_file.get(), &io, buffer_pages,
                               spec, nullptr,
                               [](const Tuple&, const Tuple&, double) {
                                 return Status::OK();
                               }));
  // Section 3: I/O = b_R + ceil(b_R / (M-1)) * b_S.
  const uint64_t b_r = r_file->NumPages();
  const uint64_t b_s = s_file->NumPages();
  const uint64_t blocks = (b_r + buffer_pages - 2) / (buffer_pages - 1);
  EXPECT_EQ(io.page_reads, b_r + blocks * b_s);

  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("nl_r"));
  RemoveFileIfExists(TempPath("nl_s"));
}

TEST(ExecutorTest, ThresholdPushdownKeepsAnswersAndShrinksWork) {
  // The [42] indicator optimization: WITH D >= z lets the merge window
  // run on z-cuts. Answers must match the unpushed plan filtered at the
  // end; the examined-pair count must not grow as z rises.
  WorkloadConfig config;
  config.seed = 55;
  config.num_r = 400;
  config.num_s = 400;
  config.join_fanout = 8;
  config.fuzzy_fraction = 1.0;  // all-fuzzy keys: cuts genuinely shrink
  config.partial_membership_fraction = 0.5;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  BufferPool setup_pool(8);
  ASSERT_OK_AND_ASSIGN(
      auto r_file,
      WriteRelationToFile(dataset.r, TempPath("th_r"), &setup_pool, 128));
  ASSERT_OK_AND_ASSIGN(
      auto s_file,
      WriteRelationToFile(dataset.s, TempPath("th_s"), &setup_pool, 128));

  uint64_t previous_pairs = UINT64_MAX;
  for (double threshold : {0.0, 0.3, 0.6, 0.9}) {
    TypeJQuerySpec query;
    query.threshold = threshold;
    ASSERT_OK_AND_ASSIGN(
        RunResult nested,
        RunTypeJNestedLoop(r_file.get(), s_file.get(), query, 8));
    ASSERT_OK_AND_ASSIGN(
        RunResult merged,
        RunTypeJMergeJoin(r_file.get(), s_file.get(), query, 8,
                          TempPath("th_tmp"), 128));
    EXPECT_TRUE(nested.answer.EquivalentTo(merged.answer, 1e-12))
        << "threshold " << threshold;
    EXPECT_LE(merged.stats.cpu.tuple_pairs, previous_pairs)
        << "threshold " << threshold;
    previous_pairs = merged.stats.cpu.tuple_pairs;
  }

  r_file.reset();
  s_file.reset();
  RemoveFileIfExists(TempPath("th_r"));
  RemoveFileIfExists(TempPath("th_s"));
}

TEST(ExecutorTest, NestedLoopAndMergeJoinRunnersAgree) {
  for (uint64_t seed : {31, 32}) {
    WorkloadConfig config;
    config.seed = seed;
    config.num_r = 250;
    config.num_s = 250;
    config.join_fanout = 5;
    config.partial_membership_fraction = 0.4;
    TypeJDataset dataset = GenerateTypeJDataset(config);

    BufferPool setup_pool(8);
    ASSERT_OK_AND_ASSIGN(
        auto r_file,
        WriteRelationToFile(dataset.r, TempPath("ex_r"), &setup_pool, 128));
    ASSERT_OK_AND_ASSIGN(
        auto s_file,
        WriteRelationToFile(dataset.s, TempPath("ex_s"), &setup_pool, 128));

    TypeJQuerySpec query;
    ASSERT_OK_AND_ASSIGN(
        RunResult nested,
        RunTypeJNestedLoop(r_file.get(), s_file.get(), query, 8));
    ASSERT_OK_AND_ASSIGN(
        RunResult merged,
        RunTypeJMergeJoin(r_file.get(), s_file.get(), query, 8,
                          TempPath("ex_tmp"), 128));

    EXPECT_GT(nested.answer.NumTuples(), 0u);
    EXPECT_TRUE(nested.answer.EquivalentTo(merged.answer, 1e-12))
        << "seed " << seed;
    EXPECT_GT(merged.stats.sort_seconds, 0.0);

    // The answers also match the in-memory naive evaluator on the same
    // data -- ties the file path to the executable specification.
    Catalog catalog;
    ASSERT_OK(catalog.AddRelation(dataset.r));
    ASSERT_OK(catalog.AddRelation(dataset.s));
    ASSERT_OK_AND_ASSIGN(
        auto bound,
        sql::ParseAndBind("SELECT R.X FROM R WHERE R.Y IN "
                          "(SELECT S.Z FROM S WHERE S.V = R.U)",
                          catalog));
    NaiveEvaluator naive;
    ASSERT_OK_AND_ASSIGN(Relation spec_answer, naive.Evaluate(*bound));
    EXPECT_TRUE(spec_answer.EquivalentTo(nested.answer, 1e-12));

    r_file.reset();
    s_file.reset();
    RemoveFileIfExists(TempPath("ex_r"));
    RemoveFileIfExists(TempPath("ex_s"));
  }
}

}  // namespace
}  // namespace fuzzydb
