#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "test_util.h"

namespace fuzzydb {
namespace sql {
namespace {

// ------------------------------ Lexer --------------------------------

TEST(LexerTest, TokenizesOperatorsAndLiterals) {
  ASSERT_OK_AND_ASSIGN(auto tokens,
                       Tokenize("a.b <= 3.5, 'str' \"term\" <> ~= ()"));
  ASSERT_EQ(tokens.size(), 13u);  // incl. end-of-input
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[3].type, TokenType::kLe);
  EXPECT_EQ(tokens[4].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(tokens[4].number, 3.5);
  EXPECT_EQ(tokens[5].type, TokenType::kComma);
  EXPECT_EQ(tokens[6].type, TokenType::kString);
  EXPECT_EQ(tokens[6].text, "str");
  EXPECT_EQ(tokens[7].type, TokenType::kTerm);
  EXPECT_EQ(tokens[7].text, "term");
  EXPECT_EQ(tokens[8].type, TokenType::kNe);
  EXPECT_EQ(tokens[9].type, TokenType::kApprox);
}

TEST(LexerTest, ReportsUnterminatedString) {
  const auto result = Tokenize("select 'oops");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, ReportsUnexpectedCharacter) {
  EXPECT_FALSE(Tokenize("select #").ok());
  EXPECT_FALSE(Tokenize("a ~ b").ok());
}

// ------------------------------ Parser -------------------------------

TEST(ParserTest, PaperQuery1) {
  // Query 1 (Section 2.2); the FROM clause uses an explicit comma.
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(R"sql(
      SELECT F.NAME, M.NAME
      FROM F, M
      WHERE F.AGE = M.AGE AND M.INCOME > "medium high")sql"));
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[0].kind, Predicate::Kind::kCompare);
  EXPECT_EQ(q->where[1].op, CompareOp::kGt);
  EXPECT_EQ(q->where[1].rhs.literal.term, "medium high");
}

TEST(ParserTest, PaperQuery2Nested) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(R"sql(
      SELECT F.NAME
      FROM F
      WHERE F.AGE = "medium young" AND
            F.INCOME IN (SELECT M.INCOME FROM M
                         WHERE M.AGE = "middle age"))sql"));
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_EQ(q->where[1].kind, Predicate::Kind::kIn);
  EXPECT_FALSE(q->where[1].negated);
  ASSERT_NE(q->where[1].subquery, nullptr);
  EXPECT_EQ(q->where[1].subquery->from[0].name, "M");
}

TEST(ParserTest, PaperQuery4NotIn) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(R"sql(
      SELECT R.NAME
      FROM EMP_SALES R
      WHERE R.INCOME is not in
            (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE))sql"));
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].kind, Predicate::Kind::kIn);
  EXPECT_TRUE(q->where[0].negated);
  EXPECT_EQ(q->from[0].alias, "R");
}

TEST(ParserTest, PaperQuery5Aggregate) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(R"sql(
      SELECT R.NAME
      FROM CITIES_REGION_A R
      WHERE R.AVE_HOME_INCOME >
            (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S
             WHERE S.POPULATION = R.POPULATION))sql"));
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].kind, Predicate::Kind::kAggCompare);
  EXPECT_EQ(q->where[0].op, CompareOp::kGt);
  EXPECT_EQ(q->where[0].subquery->select[0].agg, AggFunc::kMax);
}

TEST(ParserTest, QuantifiedAll) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(R"sql(
      SELECT R.X FROM R
      WHERE R.Y <= ALL (SELECT S.Z FROM S WHERE S.V = R.U))sql"));
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].kind, Predicate::Kind::kQuantified);
  EXPECT_EQ(q->where[0].quantifier, Predicate::Quantifier::kAll);
  EXPECT_EQ(q->where[0].op, CompareOp::kLe);
}

TEST(ParserTest, QuantifiedSomeAndAny) {
  ASSERT_OK_AND_ASSIGN(auto q1, ParseQuery(
      "SELECT R.X FROM R WHERE R.Y > SOME (SELECT S.Z FROM S)"));
  EXPECT_EQ(q1->where[0].quantifier, Predicate::Quantifier::kSome);
  ASSERT_OK_AND_ASSIGN(auto q2, ParseQuery(
      "SELECT R.X FROM R WHERE R.Y > ANY (SELECT S.Z FROM S)"));
  EXPECT_EQ(q2->where[0].quantifier, Predicate::Quantifier::kSome);
}

TEST(ParserTest, ChainQuery6Shape) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(R"sql(
      SELECT R1.X1 FROM R1
      WHERE R1.P > 5 AND R1.Y1 IN
        (SELECT R2.X2 FROM R2
         WHERE R2.U2 = R1.U1 AND R2.X2 IN
           (SELECT R3.X3 FROM R3
            WHERE R3.V3 = R2.V2 AND R3.W3 = R1.W1)))sql"));
  const auto& level2 = q->where[1].subquery;
  ASSERT_NE(level2, nullptr);
  const auto& level3 = level2->where[1].subquery;
  ASSERT_NE(level3, nullptr);
  EXPECT_EQ(level3->from[0].name, "R3");
  EXPECT_EQ(level3->where.size(), 2u);
}

TEST(ParserTest, ExistsAndNotExists) {
  ASSERT_OK_AND_ASSIGN(auto q1, ParseQuery(
      "SELECT R.X FROM R WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)"));
  ASSERT_EQ(q1->where.size(), 1u);
  EXPECT_EQ(q1->where[0].kind, Predicate::Kind::kExists);
  EXPECT_FALSE(q1->where[0].negated);

  ASSERT_OK_AND_ASSIGN(auto q2, ParseQuery(
      "SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Z FROM S)"));
  EXPECT_EQ(q2->where[0].kind, Predicate::Kind::kExists);
  EXPECT_TRUE(q2->where[0].negated);

  // NOT without EXISTS or IN is an error.
  EXPECT_FALSE(ParseQuery("SELECT R.X FROM R WHERE NOT R.Y = 3").ok());
}

TEST(ParserTest, WithClause) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(
      "SELECT R.X FROM R WHERE R.Y = 3 WITH D >= 0.5"));
  EXPECT_TRUE(q->has_with);
  EXPECT_DOUBLE_EQ(q->with_threshold, 0.5);
}

TEST(ParserTest, WithClauseRejectsBadThreshold) {
  EXPECT_FALSE(ParseQuery("SELECT R.X FROM R WITH D >= 1.5").ok());
  EXPECT_FALSE(ParseQuery("SELECT R.X FROM R WITH D = 0.5").ok());
}

TEST(ParserTest, GroupByBothSpellings) {
  ASSERT_OK_AND_ASSIGN(auto q1,
                       ParseQuery("SELECT R.K FROM R GROUPBY R.K"));
  EXPECT_EQ(q1->group_by.size(), 1u);
  ASSERT_OK_AND_ASSIGN(auto q2,
                       ParseQuery("SELECT R.K FROM R GROUP BY R.K"));
  EXPECT_EQ(q2->group_by.size(), 1u);
}

TEST(ParserTest, TrapAndAboutLiterals) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(
      "SELECT R.X FROM R WHERE R.Y = TRAP(1, 2, 3, 4) AND R.Z ~= ABOUT(10, 2)"));
  const auto& lit1 = q->where[0].rhs.literal.value;
  EXPECT_EQ(lit1.AsFuzzy(), Trapezoid(1, 2, 3, 4));
  EXPECT_EQ(q->where[1].op, CompareOp::kApproxEq);
  EXPECT_EQ(q->where[1].rhs.literal.value.AsFuzzy(),
            Trapezoid::Triangle(8, 10, 12));
}

TEST(ParserTest, ApproxEqualWithTolerance) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(
      "SELECT R.X FROM R WHERE R.Y ~= 25 WITHIN 40"));
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0].op, CompareOp::kApproxEq);
  EXPECT_DOUBLE_EQ(q->where[0].approx_tolerance, 40.0);
  // Round trips.
  ASSERT_OK_AND_ASSIGN(auto q2, ParseQuery(q->ToString()));
  EXPECT_EQ(q->ToString(), q2->ToString());
  // WITHIN requires ~= and a positive tolerance.
  EXPECT_FALSE(ParseQuery("SELECT R.X FROM R WHERE R.Y = 25 WITHIN 40").ok());
  EXPECT_FALSE(ParseQuery("SELECT R.X FROM R WHERE R.Y ~= 25 WITHIN 0").ok());
}

TEST(ParserTest, NegativeNumbersAndSigns) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(
      "SELECT R.X FROM R WHERE R.Y >= -2.5 AND R.Z < +7"));
  EXPECT_DOUBLE_EQ(q->where[0].rhs.literal.value.AsFuzzy().CrispValue(), -2.5);
  EXPECT_DOUBLE_EQ(q->where[1].rhs.literal.value.AsFuzzy().CrispValue(), 7.0);
}

TEST(ParserTest, TableAliases) {
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery("SELECT r.X FROM People r"));
  EXPECT_EQ(q->from[0].name, "People");
  EXPECT_EQ(q->from[0].alias, "r");
}

TEST(ParserTest, ErrorMessagesNameTheProblem) {
  auto r1 = ParseQuery("SELECT FROM R");
  ASSERT_FALSE(r1.ok());
  auto r2 = ParseQuery("SELECT R.X R");  // missing FROM
  ASSERT_FALSE(r2.ok());
  auto r3 = ParseQuery("SELECT R.X FROM R WHERE");
  ASSERT_FALSE(r3.ok());
  auto r4 = ParseQuery("SELECT R.X FROM R extra stuff");
  ASSERT_FALSE(r4.ok());
  auto r5 = ParseQuery("SELECT R.X FROM R WHERE R.Y NOT 5");
  ASSERT_FALSE(r5.ok());
}

TEST(ParserTest, RoundTripsThroughToString) {
  const std::string text =
      "SELECT F.NAME FROM F WHERE F.AGE = \"medium young\" AND F.INCOME IN "
      "(SELECT M.INCOME FROM M WHERE M.AGE = \"middle age\") WITH D >= 0.25";
  ASSERT_OK_AND_ASSIGN(auto q, ParseQuery(text));
  // Printing and re-parsing yields the same structure.
  ASSERT_OK_AND_ASSIGN(auto q2, ParseQuery(q->ToString()));
  EXPECT_EQ(q->ToString(), q2->ToString());
}

}  // namespace
}  // namespace sql
}  // namespace fuzzydb
