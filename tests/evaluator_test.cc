// Hand-checked evaluation tests, run against BOTH evaluators: the naive
// one (the executable spec) and the unnesting one (the paper's plans).
#include <gtest/gtest.h>

#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

using testing_util::DegreeOf;

/// Which evaluator a parameterized test exercises.
enum class Engine { kNaive, kUnnesting };

class EvaluatorTest : public ::testing::TestWithParam<Engine> {
 protected:
  Result<Relation> Run(const std::string& text, const Catalog& catalog) {
    auto bound = sql::ParseAndBind(text, catalog);
    if (!bound.ok()) return bound.status();
    if (GetParam() == Engine::kNaive) {
      NaiveEvaluator naive;
      return naive.Evaluate(**bound);
    }
    UnnestingEvaluator unnesting;
    return unnesting.Evaluate(**bound);
  }

  /// A small controlled database with crisp and fuzzy join values.
  ///   R(X, Y, U): (1, 5, 10) D=1; (2, tri(4,6,8), 20) D=0.9;
  ///               (3, 100, 10) D=1; (4, 0.5, 99) D=1
  ///   S(Z, V):    (5, 10) D=1; (7, 20) D=0.8
  Catalog MakeSmallCatalog() {
    Catalog catalog;
    Relation r("R", Schema{Column{"X", ValueType::kFuzzy},
                           Column{"Y", ValueType::kFuzzy},
                           Column{"U", ValueType::kFuzzy}});
    EXPECT_OK(r.Append(
        Tuple({Value::Number(1), Value::Number(5), Value::Number(10)}, 1.0)));
    EXPECT_OK(r.Append(Tuple({Value::Number(2),
                              Value::Fuzzy(Trapezoid::Triangle(4, 6, 8)),
                              Value::Number(20)},
                             0.9)));
    EXPECT_OK(r.Append(Tuple(
        {Value::Number(3), Value::Number(100), Value::Number(10)}, 1.0)));
    EXPECT_OK(r.Append(Tuple(
        {Value::Number(4), Value::Number(0.5), Value::Number(99)}, 1.0)));
    EXPECT_OK(catalog.AddRelation(std::move(r)));

    Relation s("S", Schema{Column{"Z", ValueType::kFuzzy},
                           Column{"V", ValueType::kFuzzy}});
    EXPECT_OK(
        s.Append(Tuple({Value::Number(5), Value::Number(10)}, 1.0)));
    EXPECT_OK(
        s.Append(Tuple({Value::Number(7), Value::Number(20)}, 0.8)));
    EXPECT_OK(catalog.AddRelation(std::move(s)));
    return catalog;
  }
};

// ----- The paper's Example 4.1, end to end ----------------------------

TEST_P(EvaluatorTest, PaperExample41InnerBlock) {
  Catalog catalog = testing_util::MakePaperCatalog();
  ASSERT_OK_AND_ASSIGN(
      Relation t,
      Run("SELECT M.INCOME FROM M WHERE M.AGE = \"middle age\"", catalog));
  // T = { about 40K : 0.4, high : 1 }.
  ASSERT_EQ(t.NumTuples(), 2u);
  ASSERT_OK_AND_ASSIGN(Trapezoid about_40k,
                       catalog.terms().Lookup("about 40k"));
  ASSERT_OK_AND_ASSIGN(Trapezoid high, catalog.terms().Lookup("high"));
  double d40 = -1, dhigh = -1;
  for (const Tuple& tuple : t.tuples()) {
    if (tuple.ValueAt(0).AsFuzzy() == about_40k) d40 = tuple.degree();
    if (tuple.ValueAt(0).AsFuzzy() == high) dhigh = tuple.degree();
  }
  EXPECT_DOUBLE_EQ(d40, 0.4);
  EXPECT_DOUBLE_EQ(dhigh, 1.0);
}

TEST_P(EvaluatorTest, PaperExample41Query2Answer) {
  Catalog catalog = testing_util::MakePaperCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT F.NAME FROM F
      WHERE F.AGE = "medium young" AND
            F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = "middle age"))sql",
                                            catalog));
  // Answer = { Ann : 0.7, Betty : 0.7 }.
  ASSERT_EQ(answer.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, "Ann"), 0.7);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, "Betty"), 0.7);
}

TEST_P(EvaluatorTest, PaperExample41WithThreshold) {
  Catalog catalog = testing_util::MakePaperCatalog();
  // Ann's pre-dedup degrees are {0.3, 0.7}: a WITH D >= 0.6 keeps the
  // deduplicated 0.7 answers.
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT F.NAME FROM F
      WHERE F.AGE = "medium young" AND
            F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = "middle age")
      WITH D >= 0.75)sql",
                                            catalog));
  EXPECT_EQ(answer.NumTuples(), 0u);
  ASSERT_OK_AND_ASSIGN(answer, Run(R"sql(
      SELECT F.NAME FROM F
      WHERE F.AGE = "medium young" AND
            F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = "middle age")
      WITH D >= 0.7)sql",
                                   catalog));
  EXPECT_EQ(answer.NumTuples(), 2u);
}

// ----- Controlled small database: one test per query type -------------

TEST_P(EvaluatorTest, TypeJHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // r1: T={5:1}, d(5=5)=1 -> 1. r2: T={7:0.8}, d(tri(4,6,8)=7)=0.5 -> 0.5.
  // r3: T={5:1}, d(100=5)=0 -> out. r4: T empty -> out.
  ASSERT_EQ(answer.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.5);
}

TEST_P(EvaluatorTest, TypeJXHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // d_r = min(mu_R(r), 1 - d(in)): r1: 0 -> out. r2: min(0.9, 0.5) = 0.5.
  // r3: 1. r4: T empty, d(not in) = 1 -> 1.
  ASSERT_EQ(answer.NumTuples(), 3u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 4.0), 1.0);
}

TEST_P(EvaluatorTest, TypeJALLHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y <= ALL (SELECT S.Z FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // r1: 1 - min(1, 1-d(5<=5)) = 1. r2: 1 - min(0.8, 1-d(tri<=7)=0) = 1
  //   -> min(0.9, 1) = 0.9. r3: 1 - min(1, 1-d(100<=5)) = 0 -> out.
  // r4: T empty -> 1.
  ASSERT_EQ(answer.NumTuples(), 3u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.9);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 4.0), 1.0);
}

TEST_P(EvaluatorTest, TypeJSOMEHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y < SOME (SELECT S.Z FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // r1: d(5 < 5) = 0 -> out. r2: min(0.8, d(tri(4,6,8) < 7) = 1) = 0.8
  //   -> min(0.9, 0.8) = 0.8. r3: 0 -> out. r4: empty -> 0 -> out.
  ASSERT_EQ(answer.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.8);
}

TEST_P(EvaluatorTest, TypeJACountHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y > (SELECT COUNT(S.Z) FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // r1: count=1, d(5>1)=1 -> 1. r2: count=1 -> 0.9. r3: d(100>1)=1 -> 1.
  // r4: T empty -> COUNT = 0, d(0.5 > 0) = 1 -> 1 (the outer-join arm).
  ASSERT_EQ(answer.NumTuples(), 4u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.9);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 4.0), 1.0);
}

TEST_P(EvaluatorTest, TypeJAMaxEmptyGroupYieldsNoTuple) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y <= (SELECT MAX(S.Z) FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // r1: max=5, d(5<=5)=1 -> 1. r2: max=7 -> d(tri<=7)=1 -> 0.9.
  // r3: max=5, d(100<=5)=0 -> out. r4: T empty, MAX=NULL -> out.
  ASSERT_EQ(answer.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.9);
}

TEST_P(EvaluatorTest, TypeJEXISTSHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // d(EXISTS T(r)) = max membership in T(r):
  // r1: {5:1} -> 1. r2: {7:0.8} -> min(0.9, 0.8) = 0.8.
  // r3: {5:1} -> 1. r4: empty -> out.
  ASSERT_EQ(answer.NumTuples(), 3u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.8);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 3.0), 1.0);
}

TEST_P(EvaluatorTest, TypeNotExistsHandComputed) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE NOT EXISTS (SELECT S.Z FROM S WHERE S.V = R.U))sql",
                                            catalog));
  // r1: 1-1=0 -> out. r2: min(0.9, 1-0.8) = 0.2. r3: 0 -> out. r4: 1.
  ASSERT_EQ(answer.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.2);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 4.0), 1.0);
}

TEST_P(EvaluatorTest, PaperQuery5ShapeJAMax) {
  Catalog catalog = testing_util::MakePaperCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M WHERE M.AGE = F.AGE))sql",
                                            catalog));
  // Hand-derived (see degree calibration): Ann 0.7 (via Ann 102),
  // Betty 1.0; Cathy excluded (low > high impossible).
  ASSERT_EQ(answer.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, "Ann"), 0.7);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, "Betty"), 1.0);
}

TEST_P(EvaluatorTest, ChainThreeLevels) {
  Catalog catalog = MakeSmallCatalog();
  // Add a third relation T2(W, G): join S.Z to T2.W via groups.
  Relation t2("T2", Schema{Column{"W", ValueType::kFuzzy},
                           Column{"G", ValueType::kFuzzy}});
  ASSERT_OK(t2.Append(Tuple({Value::Number(5), Value::Number(10)}, 0.6)));
  ASSERT_OK(t2.Append(Tuple({Value::Number(7), Value::Number(20)}, 1.0)));
  ASSERT_OK(catalog.AddRelation(std::move(t2)));

  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R
      WHERE R.Y IN
        (SELECT S.Z FROM S
         WHERE S.V = R.U AND S.Z IN
           (SELECT T2.W FROM T2 WHERE T2.G = S.V)))sql",
                                            catalog));
  // r1: s=(5,10): d(5=5)=1, T2 gives (5,10) deg 0.6 -> d(5 in {5:0.6})=0.6
  //   -> min(1, 1, 0.6) = 0.6.
  // r2: s=(7,20): min(0.9, 0.8, d(tri=7)=0.5, d(7 in {7:1})=1) = 0.5.
  // r3, r4: out.
  ASSERT_EQ(answer.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 1.0), 0.6);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 2.0), 0.5);
}

TEST_P(EvaluatorTest, FlatJoinQuery1Shape) {
  Catalog catalog = testing_util::MakePaperCatalog();
  if (GetParam() == Engine::kUnnesting) {
    // Flat queries fall back to the naive evaluator inside the unnesting
    // engine; exercised via the naive parameterization.
    GTEST_SKIP();
  }
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT F.NAME, M.NAME FROM F, M
      WHERE F.AGE = M.AGE AND M.INCOME > "medium high")sql",
                                            catalog));
  // Pairs with d > 0; e.g. (Betty, Bill): d(ma=ma)=1,
  // d(high > medium high) -> Poss(mh < high):
  // sup min(mu_high(v), SupStrictlyBelow(mh, v)) = 1 (high reaches far
  // beyond medium high's support).
  EXPECT_GT(answer.NumTuples(), 0u);
  double betty_bill = -1;
  for (const Tuple& t : answer.tuples()) {
    if (t.ValueAt(0).AsString() == "Betty" &&
        t.ValueAt(1).AsString() == "Bill") {
      betty_bill = t.degree();
    }
  }
  EXPECT_DOUBLE_EQ(betty_bill, 1.0);
}

TEST_P(EvaluatorTest, UncorrelatedAggregateTypeA) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_OK_AND_ASSIGN(Relation answer, Run(R"sql(
      SELECT R.X FROM R WHERE R.Y >= (SELECT SUM(S.Z) FROM S))sql",
                                            catalog));
  // SUM over the fuzzy set {5:1, 7:0.8} = 12 (both crisp).
  // r1: d(5 >= 12) = 0. r2: d(tri(4,6,8) >= 12) = 0. r3: d(100>=12)=1.
  // r4: d(0.5>=12)=0.
  ASSERT_EQ(answer.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(DegreeOf(answer, 3.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, EvaluatorTest,
                         ::testing::Values(Engine::kNaive,
                                           Engine::kUnnesting),
                         [](const auto& info) {
                           return info.param == Engine::kNaive ? "Naive"
                                                               : "Unnesting";
                         });

// ----- Unnesting-engine-specific checks -------------------------------

TEST(UnnestingEvaluatorTest, ReportsChosenPlan) {
  Catalog catalog = testing_util::MakePaperCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE))sql",
                                                     catalog));
  UnnestingEvaluator engine;
  ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));
  (void)answer;
  EXPECT_EQ(engine.last_type(), QueryType::kTypeJ);
  EXPECT_TRUE(engine.last_was_unnested());
}

TEST(UnnestingEvaluatorTest, HandlesMultiSubqueryQueries) {
  Catalog catalog = testing_util::MakePaperCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M)
        AND F.AGE IN (SELECT M.AGE FROM M))sql",
                                                     catalog));
  UnnestingEvaluator engine;
  ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));
  EXPECT_EQ(engine.last_type(), QueryType::kTypeMulti);
  EXPECT_TRUE(engine.last_was_unnested());

  NaiveEvaluator naive;
  ASSERT_OK_AND_ASSIGN(Relation expected, naive.Evaluate(*bound));
  EXPECT_TRUE(expected.EquivalentTo(answer, 1e-12));
}

TEST(UnnestingEvaluatorTest, FallsBackForGeneralQueries) {
  Catalog catalog = testing_util::MakePaperCatalog();
  // A NOT IN below an IN is outside every unnested plan (not a chain,
  // not 2-level): the engine must fall back to the naive evaluator.
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN
        (SELECT M.INCOME FROM M
         WHERE M.AGE NOT IN (SELECT F.AGE FROM F)))sql",
                                                     catalog));
  UnnestingEvaluator engine;
  ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));
  (void)answer;
  EXPECT_EQ(engine.last_type(), QueryType::kGeneral);
  EXPECT_FALSE(engine.last_was_unnested());
}

}  // namespace
}  // namespace fuzzydb
