// Grammar-driven fuzzing of the whole pipeline: random Fuzzy SQL queries
// over random databases, round-tripped through the printer/parser and
// evaluated by both engines. Complements equivalence_test.cc's fixed
// query set with shapes no one thought to write down.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "sql/parser.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

/// Generates random queries over relations R(C0..C2), S(C0..C1),
/// T3(C0..C1).
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate() { return SelectBlock("R", 3, /*depth=*/0); }

 private:
  std::string Column(const std::string& table, size_t num_cols) {
    return table + ".C" + std::to_string(rng_.UniformInt(0, num_cols - 1));
  }

  std::string Constant() {
    switch (rng_.UniformInt(0, 2)) {
      case 0:
        return std::to_string(rng_.UniformInt(0, 20));
      case 1: {
        const int64_t v = rng_.UniformInt(2, 18);
        return "ABOUT(" + std::to_string(v) + ", " +
               std::to_string(rng_.UniformInt(1, 4)) + ")";
      }
      default: {
        int64_t c[4] = {rng_.UniformInt(0, 20), rng_.UniformInt(0, 20),
                        rng_.UniformInt(0, 20), rng_.UniformInt(0, 20)};
        std::sort(c, c + 4);
        return "TRAP(" + std::to_string(c[0]) + "," + std::to_string(c[1]) +
               "," + std::to_string(c[2]) + "," + std::to_string(c[3]) + ")";
      }
    }
  }

  std::string Op() {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">=", "~="};
    return kOps[rng_.UniformInt(0, 6)];
  }

  std::string LocalPredicate(const std::string& table, size_t num_cols) {
    return Column(table, num_cols) + " " + Op() + " " + Constant();
  }

  /// One subquery predicate against relation `inner` correlated (or not)
  /// with `outer`.
  std::string SubqueryPredicate(const std::string& outer, size_t outer_cols,
                                const std::string& inner, size_t inner_cols,
                                int depth) {
    std::string where;
    int conjuncts = 0;
    auto add = [&](const std::string& pred) {
      where += (conjuncts++ == 0 ? " WHERE " : " AND ") + pred;
    };
    if (rng_.Bernoulli(0.7)) {  // correlation predicate
      add(Column(inner, inner_cols) + " " + (rng_.Bernoulli(0.7) ? "=" : Op()) +
          " " + Column(outer, outer_cols));
    }
    if (rng_.Bernoulli(0.4)) {
      add(LocalPredicate(inner, inner_cols));
    }
    // Occasionally nest one level deeper (chain-ish / general).
    if (depth < 1 && rng_.Bernoulli(0.25)) {
      add(Column(inner, inner_cols) + " IN (SELECT T3.C0 FROM T3 WHERE " +
          "T3.C1 = " + Column(inner, inner_cols) + ")");
    }

    // Occasionally a grouped set subquery (one value per group).
    std::string group_suffix;
    std::string sub_column = Column(inner, inner_cols);
    if (rng_.Bernoulli(0.15)) {
      group_suffix = " GROUPBY " + sub_column;
      if (rng_.Bernoulli(0.5)) {
        group_suffix += " HAVING COUNT(" + Column(inner, inner_cols) +
                        ") >= " + std::to_string(rng_.UniformInt(1, 3));
      }
    }
    const std::string sub =
        "(SELECT " + sub_column + " FROM " + inner + where + group_suffix +
        ")";
    const std::string agg_sub = "(SELECT " +
                                std::vector<std::string>{
                                    "MAX", "MIN", "SUM", "AVG",
                                    "COUNT"}[rng_.UniformInt(0, 4)] +
                                "(" + inner + ".C0) FROM " + inner + where +
                                ")";
    switch (rng_.UniformInt(0, 5)) {
      case 0:
        return Column(outer, outer_cols) + " IN " + sub;
      case 1:
        return Column(outer, outer_cols) + " NOT IN " + sub;
      case 2:
        return Column(outer, outer_cols) + " " + Op() + " ALL " + sub;
      case 3:
        return Column(outer, outer_cols) + " " + Op() + " SOME " + sub;
      case 4:
        return std::string(rng_.Bernoulli(0.5) ? "EXISTS " : "NOT EXISTS ") +
               sub;
      default:
        return Column(outer, outer_cols) + " " + Op() + " " + agg_sub;
    }
  }

  std::string SelectBlock(const std::string& table, size_t num_cols,
                          int depth) {
    std::string query = "SELECT " + Column(table, num_cols) + " FROM " + table;
    int conjuncts = 0;
    auto add = [&](const std::string& pred) {
      query += (conjuncts++ == 0 ? " WHERE " : " AND ") + pred;
    };
    if (rng_.Bernoulli(0.5)) add(LocalPredicate(table, num_cols));
    const int subqueries = static_cast<int>(rng_.UniformInt(0, 2));
    for (int i = 0; i < subqueries; ++i) {
      add(SubqueryPredicate(table, num_cols, "S", 2, depth));
    }
    if (rng_.Bernoulli(0.3)) {
      query += " WITH D >= 0." + std::to_string(rng_.UniformInt(1, 8));
    }
    return query;
  }

  Rng rng_;
};

class FuzzQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzQueryTest, PipelineSurvivesAndEnginesAgree) {
  const uint64_t seed = GetParam();
  Catalog catalog;
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 3 + 1, "R", 3, 25)));
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 5 + 2, "S", 2, 25)));
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 7 + 3, "T3", 2, 15)));

  QueryGenerator generator(seed);
  int evaluated = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::string text = generator.Generate();
    SCOPED_TRACE(text);

    // Parse; every generated query must be grammatical.
    auto parsed = sql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    // Printer round-trip: ToString must re-parse to the same text.
    auto reparsed = sql::ParseQuery((*parsed)->ToString());
    ASSERT_TRUE(reparsed.ok()) << (*parsed)->ToString();
    EXPECT_EQ((*parsed)->ToString(), (*reparsed)->ToString());

    auto bound = sql::Bind(**parsed, catalog);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();

    NaiveEvaluator naive;
    auto expected = naive.Evaluate(**bound);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    UnnestingEvaluator unnesting;
    auto actual = unnesting.Evaluate(**bound);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();

    EXPECT_TRUE(expected->EquivalentTo(*actual, 1e-9))
        << "type " << QueryTypeName(unnesting.last_type()) << "\nnaive:\n"
        << expected->ToString(60) << "unnested:\n"
        << actual->ToString(60);
    ++evaluated;
  }
  EXPECT_EQ(evaluated, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQueryTest,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
}  // namespace fuzzydb
