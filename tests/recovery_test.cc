// Crash recovery end to end: inject a failure at each WAL fail point in
// the middle of an INSERT batch, "crash" (drop the shell without any
// save), restart, and require that the recovered database answers
// exactly like an uncrashed control database that ran only the
// acknowledged statements -- at every engine thread count. Also the
// torn-tail and orphan-sweep halves of the recovery contract
// (docs/durability.md).
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "shell/shell.h"
#include "test_util.h"
#include "wal/wal_manager.h"

namespace fuzzydb {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/fuzzydb_recovery_" + name;
  const std::string cmd = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

/// Feeds one statement, returning whether the shell acknowledged it.
bool Feed(Shell* shell, const std::string& line) {
  std::ostringstream out;
  shell->clear_error();
  shell->FeedLine(line, out);
  return !shell->had_error();
}

std::string Select(Shell* shell, size_t threads) {
  shell->set_num_threads(threads);
  std::ostringstream out;
  shell->clear_error();
  shell->FeedLine("SELECT T.X FROM T;", out);
  EXPECT_FALSE(shell->had_error()) << out.str();
  return out.str();
}

std::string InsertStatement(int i) {
  return "INSERT INTO T VALUES (" + std::to_string(i) + ") DEGREE 0.5;";
}

/// Names of all entries in `dir` with `suffix`.
std::vector<std::string> EntriesWithSuffix(const std::string& dir,
                                           const std::string& suffix) {
  std::vector<std::string> hits;
  const std::string listing = dir + "/.listing";
  const std::string cmd = "ls -1 '" + dir + "' > '" + listing + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  std::ifstream in(listing);
  std::string name;
  while (std::getline(in, name)) {
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      hits.push_back(name);
    }
  }
  (void)std::remove(listing.c_str());
  return hits;
}

// The crash matrix: one run per fail point, each losing a different
// statement of the batch (wal/append and wal/fsync fail the first
// armed insert; wal/rotate fails whichever insert fills the segment).
TEST(RecoveryTest, CrashMatrixMatchesUncrashedControlAtEveryThreadCount) {
  const struct {
    const char* point;
    const char* dir_name;
  } kCases[] = {
      {"wal/append", "crash_append"},
      {"wal/fsync", "crash_fsync"},
      {"wal/rotate", "crash_rotate"},
  };
  for (const auto& test_case : kCases) {
    SCOPED_TRACE(test_case.point);
    const std::string dir = TempDir(test_case.dir_name);
    wal::WalOptions options;
    options.fsync = wal::FsyncMode::kAlways;
    options.segment_bytes = 512;  // force rotations inside the batch

    constexpr int kBatch = 12;
    std::vector<bool> acked(kBatch, false);
    {
      Shell victim;
      victim.set_quiet(true);
      std::ostringstream sink;
      ASSERT_OK(victim.EnableWal(dir, options, sink));
      ASSERT_TRUE(Feed(&victim, "CREATE TABLE T (X FUZZY);"));
      FailPoints::Arm(test_case.point, /*failures=*/1);
      for (int i = 0; i < kBatch; ++i) {
        acked[i] = Feed(&victim, InsertStatement(i));
      }
      FailPoints::DisarmAll();
      // The victim shell is destroyed here with no checkpoint and no
      // .save: the log is the only thing the restart can use.
    }
    int lost = 0;
    for (int i = 0; i < kBatch; ++i) {
      if (!acked[i]) ++lost;
    }
    ASSERT_EQ(lost, 1) << "expected exactly one injected failure";

    // The control ran only the acknowledged statements, no WAL at all.
    Shell control;
    control.set_quiet(true);
    ASSERT_TRUE(Feed(&control, "CREATE TABLE T (X FUZZY);"));
    for (int i = 0; i < kBatch; ++i) {
      if (acked[i]) ASSERT_TRUE(Feed(&control, InsertStatement(i)));
    }

    Shell recovered;
    recovered.set_quiet(true);
    std::ostringstream sink;
    ASSERT_OK(recovered.EnableWal(dir, options, sink));

    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const std::string expected = Select(&control, threads);
      const std::string actual = Select(&recovered, threads);
      EXPECT_FALSE(actual.empty());
      EXPECT_EQ(actual, expected);
    }
  }
}

TEST(RecoveryTest, FailedCheckpointKeepsEveryAcknowledgedStatement) {
  const std::string dir = TempDir("ckpt_crash");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kAlways;
  {
    Shell victim;
    victim.set_quiet(true);
    std::ostringstream sink;
    ASSERT_OK(victim.EnableWal(dir, options, sink));
    ASSERT_TRUE(Feed(&victim, "CREATE TABLE T (X FUZZY);"));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(Feed(&victim, InsertStatement(i)));
    }
    ASSERT_TRUE(Feed(&victim, "CHECKPOINT;"));
    for (int i = 5; i < 10; ++i) {
      ASSERT_TRUE(Feed(&victim, InsertStatement(i)));
    }
    FailPoints::Arm("wal/checkpoint");
    EXPECT_FALSE(Feed(&victim, "CHECKPOINT;"));
    FailPoints::DisarmAll();
  }

  Shell control;
  control.set_quiet(true);
  ASSERT_TRUE(Feed(&control, "CREATE TABLE T (X FUZZY);"));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(Feed(&control, InsertStatement(i)));
  }

  Shell recovered;
  recovered.set_quiet(true);
  std::ostringstream sink;
  ASSERT_OK(recovered.EnableWal(dir, options, sink));
  EXPECT_EQ(Select(&recovered, 2), Select(&control, 2));

  // The failed checkpoint left no temp manifest and no stray image: the
  // directory holds only segments, the live manifest, and its image.
  EXPECT_TRUE(EntriesWithSuffix(dir, ".tmp").empty());
  ASSERT_OK_AND_ASSIGN(const wal::CheckpointMeta meta,
                       wal::ReadCheckpointMeta(dir));
  const std::vector<std::string> images = EntriesWithSuffix(dir, "");
  for (const std::string& name : images) {
    if (name.rfind("ckpt_", 0) == 0) EXPECT_EQ(name, meta.image_dir);
  }
}

TEST(RecoveryTest, TornTailIsTruncatedAndDataSurvives) {
  const std::string dir = TempDir("torn");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kAlways;
  {
    Shell victim;
    victim.set_quiet(true);
    std::ostringstream sink;
    ASSERT_OK(victim.EnableWal(dir, options, sink));
    ASSERT_TRUE(Feed(&victim, "CREATE TABLE T (X FUZZY);"));
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(Feed(&victim, InsertStatement(i)));
    }
  }
  // The crash tore the last append: garbage after the valid prefix.
  ASSERT_OK_AND_ASSIGN(const std::vector<uint64_t> seqs,
                       wal::ListWalSegments(dir));
  ASSERT_FALSE(seqs.empty());
  {
    std::ofstream tail(wal::WalSegmentPath(dir, seqs.back()),
                       std::ios::binary | std::ios::app);
    tail << "half-written frame";
  }

  Shell control;
  control.set_quiet(true);
  ASSERT_TRUE(Feed(&control, "CREATE TABLE T (X FUZZY);"));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Feed(&control, InsertStatement(i)));
  }

  Shell recovered;  // not quiet: the recovery summary is the assertion
  std::ostringstream summary;
  ASSERT_OK(recovered.EnableWal(dir, options, summary));
  EXPECT_NE(summary.str().find("torn tail"), std::string::npos)
      << summary.str();
  recovered.set_quiet(true);
  EXPECT_EQ(Select(&recovered, 2), Select(&control, 2));

  // A second restart is clean: the tail was truncated, not just skipped.
  Shell again;
  std::ostringstream second;
  ASSERT_OK(again.EnableWal(dir, options, second));
  EXPECT_EQ(second.str().find("torn tail"), std::string::npos)
      << second.str();
}

TEST(RecoveryTest, SweepsCheckpointDebrisOnRestart) {
  const std::string dir = TempDir("sweep");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  {
    Shell victim;
    victim.set_quiet(true);
    std::ostringstream sink;
    ASSERT_OK(victim.EnableWal(dir, options, sink));
    ASSERT_TRUE(Feed(&victim, "CREATE TABLE T (X FUZZY);"));
    ASSERT_TRUE(Feed(&victim, InsertStatement(1)));
  }
  // Debris of an interrupted checkpoint: a temp manifest and an image
  // directory no manifest names.
  {
    std::ofstream tmp(dir + "/checkpoint.meta.tmp");
    tmp << "half-written manifest";
  }
  const std::string dead_image = dir + "/ckpt_777";
  ASSERT_EQ(std::system(("mkdir '" + dead_image + "' && touch '" +
                         dead_image + "/catalog.fdb'")
                            .c_str()),
            0);

  Shell recovered;
  std::ostringstream summary;
  ASSERT_OK(recovered.EnableWal(dir, options, summary));
  EXPECT_NE(summary.str().find("swept 2 orphans"), std::string::npos)
      << summary.str();
  EXPECT_TRUE(EntriesWithSuffix(dir, ".tmp").empty());
  EXPECT_TRUE(EntriesWithSuffix(dir, "ckpt_777").empty());
}

TEST(RecoveryTest, SysWalIsQueryableAndSaveIsRefusedUnderWal) {
  const std::string dir = TempDir("syswal");
  wal::WalOptions options;
  options.fsync = wal::FsyncMode::kOff;
  Shell shell;
  shell.set_quiet(true);
  std::ostringstream sink;
  ASSERT_OK(shell.EnableWal(dir, options, sink));
  ASSERT_TRUE(Feed(&shell, "CREATE TABLE T (X FUZZY);"));
  ASSERT_TRUE(Feed(&shell, InsertStatement(1)));

  std::ostringstream out;
  shell.clear_error();
  shell.FeedLine("SELECT segment, first_lsn FROM sys.wal WITH D >= 0.0;",
                 out);
  EXPECT_FALSE(shell.had_error()) << out.str();
  EXPECT_NE(out.str().find("wal_"), std::string::npos) << out.str();

  // Unlogged persistence paths are closed while the WAL is attached.
  std::ostringstream refused;
  shell.clear_error();
  shell.FeedLine(".save " + dir + "/img", refused);
  EXPECT_TRUE(shell.had_error());
  EXPECT_NE(refused.str().find("CHECKPOINT"), std::string::npos)
      << refused.str();
}

}  // namespace
}  // namespace fuzzydb
