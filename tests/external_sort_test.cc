#include "sort/external_sort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "fuzzy/interval_order.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fuzzydb_sort_" + name;
}

TupleLess IntervalLessOn(size_t col) {
  return [col](const Tuple& a, const Tuple& b) {
    return IntervalOrderLess(a.ValueAt(col).AsFuzzy(),
                             b.ValueAt(col).AsFuzzy());
  };
}

class ExternalSortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ExternalSortTest, MatchesInMemorySortOracle) {
  const size_t num_rows = GetParam();
  Relation relation =
      GenerateRandomRelation(/*seed=*/num_rows, "R", 2, num_rows, 0, 500);

  const std::string in_path = TempPath("in" + std::to_string(num_rows));
  const std::string out_path = TempPath("out" + std::to_string(num_rows));
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(auto input,
                       WriteRelationToFile(relation, in_path, &pool, 128));

  SortStats stats;
  ASSERT_OK_AND_ASSIGN(
      auto sorted,
      ExternalSort(input.get(), &pool, IntervalLessOn(0),
                   TempPath("tmp" + std::to_string(num_rows)), out_path,
                   /*buffer_pages=*/4, /*min_record_size=*/128, &stats));
  EXPECT_EQ(stats.input_tuples, relation.NumTuples());

  ASSERT_OK_AND_ASSIGN(
      Relation result,
      ReadRelationFromFile(sorted.get(), &pool, "sorted", relation.schema()));
  ASSERT_EQ(result.NumTuples(), relation.NumTuples());

  // Order check.
  for (size_t i = 1; i < result.NumTuples(); ++i) {
    EXPECT_FALSE(IntervalOrderLess(result.TupleAt(i).ValueAt(0).AsFuzzy(),
                                   result.TupleAt(i - 1).ValueAt(0).AsFuzzy()))
        << "out of order at " << i;
  }
  // Multiset check: same tuples as a std::stable_sort oracle.
  Relation oracle = relation;
  oracle.Sort(IntervalLessOn(0));
  // Compare as fuzzy sets (EquivalentTo dedups; to compare multisets,
  // check sizes too -- done above -- and per-index keys).
  for (size_t i = 0; i < result.NumTuples(); ++i) {
    EXPECT_EQ(CompareIntervalOrder(result.TupleAt(i).ValueAt(0).AsFuzzy(),
                                   oracle.TupleAt(i).ValueAt(0).AsFuzzy()),
              0);
  }

  input.reset();
  sorted.reset();
  RemoveFileIfExists(in_path);
  RemoveFileIfExists(out_path);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExternalSortTest,
                         ::testing::Values(0, 1, 7, 100, 1000, 5000));

TEST(ExternalSortTest, MultipleRunsAndMergePasses) {
  Relation relation = GenerateRandomRelation(99, "R", 1, 4000, 0, 10000);
  const std::string in_path = TempPath("multi_in");
  BufferPool pool(4);
  ASSERT_OK_AND_ASSIGN(auto input,
                       WriteRelationToFile(relation, in_path, &pool, 256));

  SortStats stats;
  ASSERT_OK_AND_ASSIGN(
      auto sorted,
      ExternalSort(input.get(), &pool, IntervalLessOn(0), TempPath("multi"),
                   TempPath("multi_out"), /*buffer_pages=*/3,
                   /*min_record_size=*/256, &stats));
  // 4000 tuples x 256 B = ~1 MB with a 24 KiB budget: many runs, and a
  // fan-in of 2 forces multiple merge passes.
  EXPECT_GT(stats.runs_created, 8u);
  EXPECT_GT(stats.merge_passes, 1u);

  ASSERT_OK_AND_ASSIGN(
      Relation result,
      ReadRelationFromFile(sorted.get(), &pool, "s", relation.schema()));
  EXPECT_EQ(result.NumTuples(), relation.NumTuples());
  for (size_t i = 1; i < result.NumTuples(); ++i) {
    EXPECT_FALSE(IntervalOrderLess(result.TupleAt(i).ValueAt(0).AsFuzzy(),
                                   result.TupleAt(i - 1).ValueAt(0).AsFuzzy()));
  }

  input.reset();
  sorted.reset();
  RemoveFileIfExists(in_path);
  RemoveFileIfExists(TempPath("multi_out"));
}

TEST(ExternalSortTest, RejectsTinyBuffer) {
  Relation relation = GenerateRandomRelation(1, "R", 1, 10);
  const std::string in_path = TempPath("tiny_in");
  BufferPool pool(4);
  ASSERT_OK_AND_ASSIGN(auto input,
                       WriteRelationToFile(relation, in_path, &pool));
  const auto result =
      ExternalSort(input.get(), &pool, IntervalLessOn(0), TempPath("tiny"),
                   TempPath("tiny_out"), /*buffer_pages=*/2);
  EXPECT_FALSE(result.ok());
  input.reset();
  RemoveFileIfExists(in_path);
}

TEST(ExternalSortTest, SortedFileKeepsPageCountWithPadding) {
  Relation relation = GenerateRandomRelation(5, "R", 1, 500, 0, 100);
  const std::string in_path = TempPath("pages_in");
  BufferPool pool(8);
  ASSERT_OK_AND_ASSIGN(auto input,
                       WriteRelationToFile(relation, in_path, &pool, 512));
  ASSERT_OK_AND_ASSIGN(
      auto sorted,
      ExternalSort(input.get(), &pool, IntervalLessOn(0), TempPath("pages"),
                   TempPath("pages_out"), 4, 512));
  EXPECT_EQ(sorted->NumPages(), input->NumPages());
  input.reset();
  sorted.reset();
  RemoveFileIfExists(in_path);
  RemoveFileIfExists(TempPath("pages_out"));
}

}  // namespace
}  // namespace fuzzydb
