#include <gtest/gtest.h>

#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "sql/parser.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  GroupByTest() {
    // Orders: department, item price (possibly estimated), degree = how
    // certain the record is.
    Relation orders("Orders", Schema{Column{"DEPT", ValueType::kString},
                                     Column{"PRICE", ValueType::kFuzzy}});
    auto add = [&](const char* dept, Value price, double degree) {
      EXPECT_OK(orders.Append(
          Tuple({Value::String(dept), std::move(price)}, degree)));
    };
    add("toys", Value::Number(10), 1.0);
    add("toys", Value::Number(30), 0.8);
    add("toys", Value::Number(10), 0.5);  // duplicate price, lower degree
    add("books", Value::Number(20), 0.6);
    add("books", Value::Fuzzy(Trapezoid(22, 24, 26, 28)), 1.0);
    add("tools", Value::Number(100), 0.4);
    EXPECT_OK(catalog_.AddRelation(std::move(orders)));
  }

  Relation Run(const std::string& text) {
    auto bound = sql::ParseAndBind(text, catalog_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    NaiveEvaluator naive;
    auto result = naive.Evaluate(**bound);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  double GroupDegree(const Relation& relation, const std::string& key) {
    return testing_util::DegreeOf(relation, key);
  }

  Catalog catalog_;
};

TEST_F(GroupByTest, ParsesAndRoundTrips) {
  ASSERT_OK_AND_ASSIGN(auto q, sql::ParseQuery(
      "SELECT DEPT, COUNT(PRICE) FROM Orders GROUPBY DEPT "
      "HAVING COUNT(PRICE) >= 2 AND DEPT <> 'tools' ORDER BY DEPT"));
  EXPECT_EQ(q->group_by.size(), 1u);
  ASSERT_EQ(q->having.size(), 2u);
  EXPECT_EQ(q->having[0].agg, sql::AggFunc::kCount);
  EXPECT_EQ(q->having[1].agg, sql::AggFunc::kNone);
  ASSERT_OK_AND_ASSIGN(auto q2, sql::ParseQuery(q->ToString()));
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST_F(GroupByTest, GroupDegreesAreMaxOfMembers) {
  const Relation answer = Run("SELECT DEPT FROM Orders GROUPBY DEPT");
  ASSERT_EQ(answer.NumTuples(), 3u);
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "toys"), 1.0);
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "books"), 1.0);
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "tools"), 0.4);
}

TEST_F(GroupByTest, CountCountsDistinctValuesPerGroup) {
  const Relation answer =
      Run("SELECT DEPT, COUNT(PRICE) FROM Orders GROUPBY DEPT");
  for (const Tuple& t : answer.tuples()) {
    const std::string dept = t.ValueAt(0).AsString();
    const double count = t.ValueAt(1).AsFuzzy().CrispValue();
    // toys: {10, 30} (the duplicate 10 merges); books: 2; tools: 1.
    if (dept == "toys") EXPECT_DOUBLE_EQ(count, 2.0);
    if (dept == "books") EXPECT_DOUBLE_EQ(count, 2.0);
    if (dept == "tools") EXPECT_DOUBLE_EQ(count, 1.0);
  }
}

TEST_F(GroupByTest, SumUsesFuzzyArithmeticPerGroup) {
  const Relation answer =
      Run("SELECT DEPT, SUM(PRICE) FROM Orders GROUPBY DEPT");
  for (const Tuple& t : answer.tuples()) {
    if (t.ValueAt(0).AsString() == "books") {
      // 20 + trap(22,24,26,28) = trap(42,44,46,48).
      EXPECT_EQ(t.ValueAt(1).AsFuzzy(), Trapezoid(42, 44, 46, 48));
    }
    if (t.ValueAt(0).AsString() == "toys") {
      EXPECT_EQ(t.ValueAt(1).AsFuzzy(), Trapezoid::Crisp(40));
    }
  }
}

TEST_F(GroupByTest, HavingAggregateFiltersFuzzily) {
  // MAX(PRICE) > 25: toys max 30 -> degree 1; books max ~ trap centered
  // 25 -> partial; tools max 100 -> 1 but group degree 0.4.
  const Relation answer = Run(
      "SELECT DEPT FROM Orders GROUPBY DEPT HAVING MAX(PRICE) > 25");
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "toys"), 1.0);
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "tools"), 0.4);
  // books: MAX by core center is trap(22,24,26,28) (center 25 > 20);
  // d(trap > 25) = Poss(25 < trap): values above 25 are possible -> 1.
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "books"), 1.0);

  const Relation strict = Run(
      "SELECT DEPT FROM Orders GROUPBY DEPT HAVING MAX(PRICE) >= 29");
  // books' max cannot reach 29 (support ends at 28) -> excluded.
  EXPECT_EQ(GroupDegree(strict, "books"), -1.0);
  EXPECT_DOUBLE_EQ(GroupDegree(strict, "toys"), 1.0);
}

TEST_F(GroupByTest, HavingOnGroupColumn) {
  const Relation answer = Run(
      "SELECT DEPT FROM Orders GROUPBY DEPT HAVING DEPT <> 'toys'");
  EXPECT_EQ(GroupDegree(answer, "toys"), -1.0);
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "books"), 1.0);
}

TEST_F(GroupByTest, HavingCountAndWith) {
  const Relation answer = Run(
      "SELECT DEPT FROM Orders GROUPBY DEPT "
      "HAVING COUNT(PRICE) >= 2 WITH D >= 0.5");
  // tools has one value (count 1) -> out; toys & books stay.
  ASSERT_EQ(answer.NumTuples(), 2u);
}

TEST_F(GroupByTest, WhereFiltersBeforeGrouping) {
  const Relation answer = Run(
      "SELECT DEPT, COUNT(PRICE) FROM Orders "
      "WHERE PRICE <= 15 GROUPBY DEPT");
  // Only the two toys@10 rows survive (merging to one distinct value).
  ASSERT_EQ(answer.NumTuples(), 1u);
  EXPECT_EQ(answer.TupleAt(0).ValueAt(0).AsString(), "toys");
  EXPECT_DOUBLE_EQ(answer.TupleAt(0).ValueAt(1).AsFuzzy().CrispValue(), 1.0);
}

TEST_F(GroupByTest, BinderRejectsBadShapes) {
  // Non-grouped column in SELECT.
  EXPECT_FALSE(sql::ParseAndBind(
                   "SELECT PRICE FROM Orders GROUPBY DEPT", catalog_)
                   .ok());
  // HAVING without GROUPBY.
  EXPECT_FALSE(sql::ParseAndBind(
                   "SELECT DEPT FROM Orders HAVING COUNT(PRICE) > 1",
                   catalog_)
                   .ok());
  // HAVING plain column not in GROUPBY.
  EXPECT_FALSE(sql::ParseAndBind("SELECT DEPT FROM Orders GROUPBY DEPT "
                                 "HAVING PRICE > 3",
                                 catalog_)
                   .ok());
  // Scalar subquery with GROUPBY.
  EXPECT_FALSE(sql::ParseAndBind(
                   "SELECT DEPT FROM Orders o WHERE o.PRICE > "
                   "(SELECT MAX(PRICE) FROM Orders GROUPBY DEPT)",
                   catalog_)
                   .ok());
}

TEST_F(GroupByTest, GroupedSubqueryInINWorks) {
  // IN-subquery producing one value per group: legal and useful.
  const Relation answer = Run(
      "SELECT DEPT FROM Orders o WHERE o.DEPT IN "
      "(SELECT DEPT FROM Orders GROUPBY DEPT HAVING COUNT(PRICE) >= 2)");
  EXPECT_DOUBLE_EQ(GroupDegree(answer, "toys"), 1.0);
  EXPECT_EQ(GroupDegree(answer, "tools"), -1.0);
}

TEST_F(GroupByTest, UnnestingEvaluatorFallsBackAndAgrees) {
  auto bound = sql::ParseAndBind(
      "SELECT DEPT, AVG(PRICE) FROM Orders GROUPBY DEPT "
      "HAVING COUNT(PRICE) >= 2",
      catalog_);
  ASSERT_TRUE(bound.ok());
  NaiveEvaluator naive;
  UnnestingEvaluator unnesting;
  ASSERT_OK_AND_ASSIGN(Relation expected, naive.Evaluate(**bound));
  ASSERT_OK_AND_ASSIGN(Relation actual, unnesting.Evaluate(**bound));
  EXPECT_TRUE(expected.EquivalentTo(actual, 1e-12));
  EXPECT_GT(expected.NumTuples(), 0u);
}

}  // namespace
}  // namespace fuzzydb
