#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

// ----------------------------- Value ---------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::Number(3).is_fuzzy());
  EXPECT_TRUE(Value::Number(3).AsFuzzy().IsCrisp());
  EXPECT_DOUBLE_EQ(Value::Number(3).AsFuzzy().CrispValue(), 3.0);
}

TEST(ValueTest, IdenticalIsRepresentationEquality) {
  EXPECT_TRUE(Value::Number(3).Identical(Value::Number(3)));
  EXPECT_FALSE(Value::Number(3).Identical(Value::Number(4)));
  EXPECT_TRUE(Value::String("a").Identical(Value::String("a")));
  EXPECT_FALSE(Value::String("a").Identical(Value::Number(3)));
  EXPECT_TRUE(Value::Null().Identical(Value::Null()));
  // Fuzzy-equal but not identical.
  const Value wide = Value::Fuzzy(Trapezoid(0, 1, 2, 3));
  const Value crisp = Value::Number(1.5);
  EXPECT_FALSE(wide.Identical(crisp));
  EXPECT_DOUBLE_EQ(crisp.Compare(CompareOp::kEq, wide), 1.0);
}

TEST(ValueTest, StringComparisonsAreCrisp) {
  const Value a = Value::String("apple"), b = Value::String("banana");
  EXPECT_DOUBLE_EQ(a.Compare(CompareOp::kEq, a), 1.0);
  EXPECT_DOUBLE_EQ(a.Compare(CompareOp::kEq, b), 0.0);
  EXPECT_DOUBLE_EQ(a.Compare(CompareOp::kNe, b), 1.0);
  EXPECT_DOUBLE_EQ(a.Compare(CompareOp::kLt, b), 1.0);
  EXPECT_DOUBLE_EQ(b.Compare(CompareOp::kLt, a), 0.0);
  EXPECT_DOUBLE_EQ(a.Compare(CompareOp::kLe, a), 1.0);
}

TEST(ValueTest, TypeMismatchAndNullCompareToZero) {
  EXPECT_DOUBLE_EQ(
      Value::String("x").Compare(CompareOp::kEq, Value::Number(1)), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().Compare(CompareOp::kEq, Value::Null()), 0.0);
  EXPECT_DOUBLE_EQ(Value::Number(1).Compare(CompareOp::kEq, Value::Null()),
                   0.0);
}

TEST(ValueTest, TotalOrderIsConsistentWithIdentical) {
  const std::vector<Value> values = {
      Value::Null(),
      Value::String("a"),
      Value::String("b"),
      Value::Number(1),
      Value::Number(2),
      Value::Fuzzy(Trapezoid(1, 1, 2, 3)),
      Value::Fuzzy(Trapezoid(1, 2, 2, 3)),
  };
  for (const Value& x : values) {
    for (const Value& y : values) {
      const int cmp = x.TotalOrderCompare(y);
      EXPECT_EQ(cmp == 0, x.Identical(y))
          << x.ToString() << " vs " << y.ToString();
      EXPECT_EQ(cmp, -y.TotalOrderCompare(x));
    }
  }
}

// ----------------------------- Schema --------------------------------

TEST(SchemaTest, IndexLookupIsCaseInsensitive) {
  const Schema schema{Column{"NAME", ValueType::kString},
                      Column{"AGE", ValueType::kFuzzy}};
  ASSERT_OK_AND_ASSIGN(size_t idx, schema.IndexOf("age"));
  EXPECT_EQ(idx, 1u);
  EXPECT_FALSE(schema.IndexOf("income").ok());
  EXPECT_TRUE(schema.Has("Name"));
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  Schema schema{Column{"A", ValueType::kFuzzy}};
  EXPECT_OK(schema.AddColumn(Column{"B", ValueType::kString}));
  const Status st = schema.AddColumn(Column{"a", ValueType::kFuzzy});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

// ----------------------------- Tuple ---------------------------------

TEST(TupleTest, ConcatTakesMinDegree) {
  const Tuple a({Value::Number(1)}, 0.8);
  const Tuple b({Value::Number(2)}, 0.5);
  const Tuple joined = a.Concat(b);
  EXPECT_EQ(joined.NumValues(), 2u);
  EXPECT_DOUBLE_EQ(joined.degree(), 0.5);
}

TEST(TupleTest, ProjectKeepsDegree) {
  const Tuple t({Value::Number(1), Value::Number(2), Value::Number(3)}, 0.7);
  const Tuple p = t.Project({2, 0});
  EXPECT_EQ(p.NumValues(), 2u);
  EXPECT_DOUBLE_EQ(p.ValueAt(0).AsFuzzy().CrispValue(), 3.0);
  EXPECT_DOUBLE_EQ(p.ValueAt(1).AsFuzzy().CrispValue(), 1.0);
  EXPECT_DOUBLE_EQ(p.degree(), 0.7);
}

// ---------------------------- Relation -------------------------------

TEST(RelationTest, AppendDropsZeroDegreeTuples) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy}});
  EXPECT_OK(r.Append(Tuple({Value::Number(1)}, 0.0)));
  EXPECT_OK(r.Append(Tuple({Value::Number(2)}, 0.5)));
  EXPECT_EQ(r.NumTuples(), 1u);
}

TEST(RelationTest, AppendChecksArity) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy}});
  const Status st = r.Append(Tuple({Value::Number(1), Value::Number(2)}, 1.0));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, DuplicateEliminationKeepsMaxDegree) {
  // Fuzzy OR: identical answers keep the highest membership (Section 2.2).
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy}});
  EXPECT_OK(r.Append(Tuple({Value::Number(1)}, 0.3)));
  EXPECT_OK(r.Append(Tuple({Value::Number(1)}, 0.7)));
  EXPECT_OK(r.Append(Tuple({Value::Number(1)}, 0.5)));
  EXPECT_OK(r.Append(Tuple({Value::Number(2)}, 0.2)));
  r.EliminateDuplicates();
  EXPECT_EQ(r.NumTuples(), 2u);
  EXPECT_DOUBLE_EQ(testing_util::DegreeOf(r, 1.0), 0.7);
  EXPECT_DOUBLE_EQ(testing_util::DegreeOf(r, 2.0), 0.2);
}

TEST(RelationTest, WithThresholdFiltersAnswers) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy}});
  EXPECT_OK(r.Append(Tuple({Value::Number(1)}, 0.3)));
  EXPECT_OK(r.Append(Tuple({Value::Number(2)}, 0.8)));
  r.EliminateDuplicates(0.5);  // WITH D >= 0.5
  EXPECT_EQ(r.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(testing_util::DegreeOf(r, 2.0), 0.8);
}

TEST(RelationTest, AppendOrMaxMergesInPlace) {
  Relation r("R", Schema{Column{"A", ValueType::kFuzzy}});
  EXPECT_OK(r.AppendOrMax(Tuple({Value::Number(1)}, 0.3)));
  EXPECT_OK(r.AppendOrMax(Tuple({Value::Number(1)}, 0.6)));
  EXPECT_OK(r.AppendOrMax(Tuple({Value::Number(1)}, 0.4)));
  EXPECT_EQ(r.NumTuples(), 1u);
  EXPECT_DOUBLE_EQ(r.TupleAt(0).degree(), 0.6);
}

TEST(RelationTest, EquivalentToIgnoresOrderAndDuplicates) {
  Relation a("A", Schema{Column{"X", ValueType::kFuzzy}});
  Relation b("B", Schema{Column{"X", ValueType::kFuzzy}});
  EXPECT_OK(a.Append(Tuple({Value::Number(1)}, 0.5)));
  EXPECT_OK(a.Append(Tuple({Value::Number(2)}, 0.9)));
  EXPECT_OK(b.Append(Tuple({Value::Number(2)}, 0.9)));
  EXPECT_OK(b.Append(Tuple({Value::Number(1)}, 0.2)));
  EXPECT_OK(b.Append(Tuple({Value::Number(1)}, 0.5)));
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_OK(b.Append(Tuple({Value::Number(3)}, 0.1)));
  EXPECT_FALSE(a.EquivalentTo(b));
}

TEST(RelationTest, EquivalentToComparesDegrees) {
  Relation a("A", Schema{Column{"X", ValueType::kFuzzy}});
  Relation b("B", Schema{Column{"X", ValueType::kFuzzy}});
  EXPECT_OK(a.Append(Tuple({Value::Number(1)}, 0.5)));
  EXPECT_OK(b.Append(Tuple({Value::Number(1)}, 0.6)));
  EXPECT_FALSE(a.EquivalentTo(b));
  EXPECT_TRUE(a.EquivalentTo(b, 0.2));
}

// ---------------------------- Catalog --------------------------------

TEST(CatalogTest, AddLookupDrop) {
  Catalog catalog;
  EXPECT_OK(catalog.AddRelation(
      Relation("Emp", Schema{Column{"ID", ValueType::kFuzzy}})));
  EXPECT_TRUE(catalog.HasRelation("emp"));
  ASSERT_OK_AND_ASSIGN(const Relation* rel, catalog.GetRelation("EMP"));
  EXPECT_EQ(rel->name(), "Emp");
  const Status dup = catalog.AddRelation(
      Relation("EMP", Schema{Column{"ID", ValueType::kFuzzy}}));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  catalog.DropRelation("Emp");
  EXPECT_FALSE(catalog.HasRelation("emp"));
}

TEST(CatalogTest, BuiltInTermsAvailable) {
  Catalog catalog;
  EXPECT_TRUE(catalog.terms().Contains("medium young"));
}

}  // namespace
}  // namespace fuzzydb
