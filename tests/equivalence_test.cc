// The paper's equivalence theorems, checked empirically: for every query
// type and random database, the unnested plan must produce exactly the
// same fuzzy answer relation (same tuples, same membership degrees) as
// the naive nested evaluation.
//
//   Theorem 4.1  (type N)        Theorem 6.1 (types JA / COUNT)
//   Theorem 4.2  (type J)        Theorem 7.1 (type JALL)
//   Theorem 5.1  (type JX)       Theorem 8.1 (chain queries)
#include <gtest/gtest.h>

#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "test_util.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace {

struct EquivalenceCase {
  const char* name;
  const char* query;
  QueryType expected_type;
};

// R has 3 fuzzy columns C0..C2, S and T3 have 2 fuzzy columns C0..C1.
// Small domains make overlaps and exact collisions frequent.
const EquivalenceCase kCases[] = {
    {"TypeN",
     "SELECT R.C0 FROM R WHERE R.C1 IN (SELECT S.C0 FROM S WHERE S.C1 >= 5)",
     QueryType::kTypeN},
    {"TypeN_WithLocalOuterPredicate",
     "SELECT R.C0 FROM R WHERE R.C2 <= 15 AND R.C1 IN (SELECT S.C0 FROM S)",
     QueryType::kTypeN},
    {"TypeJ",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJ},
    {"TypeJ_ReversedCorrelation",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE R.C2 = S.C1)",
     QueryType::kTypeJ},
    {"TypeJ_NonEqualityCorrelation",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 <= R.C2)",
     QueryType::kTypeJ},
    {"TypeJ_TwoCorrelations",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 >= R.C0)",
     QueryType::kTypeJ},
    {"TypeJ_WithThreshold",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2) WITH D >= 0.4",
     QueryType::kTypeJ},
    {"TypeNX",
     "SELECT R.C0 FROM R WHERE R.C1 NOT IN (SELECT S.C0 FROM S)",
     QueryType::kTypeNX},
    {"TypeJX",
     "SELECT R.C0 FROM R WHERE R.C1 NOT IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJX},
    {"TypeJX_WithInnerLocalPredicate",
     "SELECT R.C0 FROM R WHERE R.C1 NOT IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 < 12)",
     QueryType::kTypeJX},
    {"TypeA_Max",
     "SELECT R.C0 FROM R WHERE R.C1 > (SELECT MAX(S.C0) FROM S)",
     QueryType::kTypeA},
    {"TypeJA_Max",
     "SELECT R.C0 FROM R WHERE R.C1 > "
     "(SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJA},
    {"TypeJA_Min",
     "SELECT R.C0 FROM R WHERE R.C1 <= "
     "(SELECT MIN(S.C0) FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJA},
    {"TypeJA_Avg",
     "SELECT R.C0 FROM R WHERE R.C1 ~= "
     "(SELECT AVG(S.C0) FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJA},
    {"TypeJA_Sum",
     "SELECT R.C0 FROM R WHERE R.C1 < "
     "(SELECT SUM(S.C0) FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJA},
    {"TypeJA_Count",
     "SELECT R.C0 FROM R WHERE R.C1 >= "
     "(SELECT COUNT(S.C0) FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJA},
    {"TypeJA_CountEmptyGroups",
     "SELECT R.C0 FROM R WHERE R.C1 < "
     "(SELECT COUNT(S.C0) FROM S WHERE S.C1 = R.C2 AND S.C0 > 18)",
     QueryType::kTypeJA},
    {"TypeJA_NonEqualityCorrelation",
     "SELECT R.C0 FROM R WHERE R.C1 > "
     "(SELECT MAX(S.C0) FROM S WHERE S.C1 <= R.C2)",
     QueryType::kTypeJA},
    {"TypeALL",
     "SELECT R.C0 FROM R WHERE R.C1 <= ALL (SELECT S.C0 FROM S)",
     QueryType::kTypeALL},
    {"TypeJALL",
     "SELECT R.C0 FROM R WHERE R.C1 <= ALL "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJALL},
    {"TypeJALL_GreaterThan",
     "SELECT R.C0 FROM R WHERE R.C1 > ALL "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJALL},
    {"TypeSOME",
     "SELECT R.C0 FROM R WHERE R.C1 < SOME (SELECT S.C0 FROM S)",
     QueryType::kTypeSOME},
    {"TypeJSOME",
     "SELECT R.C0 FROM R WHERE R.C1 < SOME "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJSOME},
    {"TypeEXISTS",
     "SELECT R.C0 FROM R WHERE EXISTS (SELECT S.C0 FROM S WHERE S.C1 > 10)",
     QueryType::kTypeEXISTS},
    {"TypeJEXISTS",
     "SELECT R.C0 FROM R WHERE EXISTS "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2)",
     QueryType::kTypeJEXISTS},
    {"TypeJNotEXISTS",
     "SELECT R.C0 FROM R WHERE NOT EXISTS "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 < R.C1)",
     QueryType::kTypeJEXISTS},
    {"Multi_TwoINs",
     "SELECT R.C0 FROM R WHERE R.C1 IN (SELECT S.C0 FROM S) "
     "AND R.C2 IN (SELECT S.C1 FROM S)",
     QueryType::kTypeMulti},
    {"Multi_MixedKinds",
     "SELECT R.C0 FROM R WHERE "
     "R.C1 IN (SELECT S.C0 FROM S WHERE S.C1 = R.C2) AND "
     "R.C0 <= (SELECT MAX(S.C0) FROM S WHERE S.C1 = R.C1) AND "
     "R.C2 < SOME (SELECT S.C1 FROM S)",
     QueryType::kTypeMulti},
    {"Multi_WithNotInAndExists",
     "SELECT R.C0 FROM R WHERE "
     "R.C1 NOT IN (SELECT S.C0 FROM S WHERE S.C1 = R.C2) AND "
     "EXISTS (SELECT S.C0 FROM S WHERE S.C1 = R.C1)",
     QueryType::kTypeMulti},
    {"Chain3",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 IN "
     "(SELECT T3.C0 FROM T3 WHERE T3.C1 = S.C1))",
     QueryType::kChain},
    {"Chain3_SkipLevelCorrelation",
     "SELECT R.C0 FROM R WHERE R.C1 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C2 AND S.C0 IN "
     "(SELECT T3.C0 FROM T3 WHERE T3.C1 = S.C1 AND T3.C0 <= R.C0))",
     QueryType::kChain},
    {"Chain4",
     "SELECT R.C0 FROM R WHERE R.C0 IN "
     "(SELECT S.C0 FROM S WHERE S.C1 = R.C1 AND S.C0 IN "
     "(SELECT T3.C0 FROM T3 WHERE T3.C1 = S.C1 AND T3.C0 IN "
     "(SELECT S.C1 FROM S WHERE S.C0 = T3.C0)))",
     QueryType::kChain},
};

class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(EquivalenceTest, NaiveAndUnnestedAgree) {
  const EquivalenceCase& test_case = kCases[std::get<0>(GetParam())];
  const uint64_t seed = std::get<1>(GetParam());

  Catalog catalog;
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 11 + 1, "R", 3, 40)));
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 13 + 2, "S", 2, 40)));
  ASSERT_OK(catalog.AddRelation(
      GenerateRandomRelation(seed * 17 + 3, "T3", 2, 25)));

  ASSERT_OK_AND_ASSIGN(auto bound,
                       sql::ParseAndBind(test_case.query, catalog));
  ASSERT_EQ(Classify(*bound), test_case.expected_type) << test_case.query;

  NaiveEvaluator naive;
  ASSERT_OK_AND_ASSIGN(Relation expected, naive.Evaluate(*bound));

  UnnestingEvaluator unnesting;
  ASSERT_OK_AND_ASSIGN(Relation actual, unnesting.Evaluate(*bound));
  EXPECT_TRUE(unnesting.last_was_unnested()) << test_case.query;

  EXPECT_TRUE(expected.EquivalentTo(actual, 1e-12))
      << test_case.name << " seed=" << seed << "\nnaive:\n"
      << expected.ToString(100) << "\nunnested:\n"
      << actual.ToString(100);
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
  return std::string(kCases[std::get<0>(info.param)].name) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, EquivalenceTest,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(kCases)),
                       ::testing::Values<uint64_t>(1, 2, 3, 4, 5)),
    CaseName);

// Partial membership degrees in base relations must also be preserved.
TEST(EquivalenceDegreesTest, PartialBaseMembership) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    WorkloadConfig config;
    config.seed = seed;
    config.num_r = 60;
    config.num_s = 60;
    config.join_fanout = 5;
    config.partial_membership_fraction = 0.7;
    TypeJDataset dataset = GenerateTypeJDataset(config);

    Catalog catalog;
    ASSERT_OK(catalog.AddRelation(dataset.r));
    ASSERT_OK(catalog.AddRelation(dataset.s));
    ASSERT_OK_AND_ASSIGN(
        auto bound,
        sql::ParseAndBind("SELECT R.X FROM R WHERE R.Y IN "
                          "(SELECT S.Z FROM S WHERE S.V = R.U)",
                          catalog));
    NaiveEvaluator naive;
    UnnestingEvaluator unnesting;
    ASSERT_OK_AND_ASSIGN(Relation expected, naive.Evaluate(*bound));
    ASSERT_OK_AND_ASSIGN(Relation actual, unnesting.Evaluate(*bound));
    EXPECT_TRUE(expected.EquivalentTo(actual, 1e-12)) << "seed " << seed;
    EXPECT_GT(expected.NumTuples(), 0u);
  }
}

}  // namespace
}  // namespace fuzzydb
