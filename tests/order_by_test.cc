#include <gtest/gtest.h>

#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "sql/parser.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

class OrderByTest : public ::testing::Test {
 protected:
  OrderByTest() {
    Relation people("People", Schema{Column{"NAME", ValueType::kString},
                                     Column{"AGE", ValueType::kFuzzy}});
    auto add = [&](const char* name, Value age, double degree) {
      EXPECT_OK(people.Append(
          Tuple({Value::String(name), std::move(age)}, degree)));
    };
    add("carol", Value::Number(40), 0.5);
    add("ana", Value::Number(25), 1.0);
    add("bo", Value::Fuzzy(Trapezoid(28, 30, 34, 36)), 0.8);  // center 32
    EXPECT_OK(catalog_.AddRelation(std::move(people)));
  }

  Relation Run(const std::string& text) {
    auto bound = sql::ParseAndBind(text, catalog_);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    NaiveEvaluator naive;
    auto result = naive.Evaluate(**bound);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  std::vector<std::string> Names(const Relation& relation) {
    std::vector<std::string> names;
    for (const Tuple& t : relation.tuples()) {
      names.push_back(t.ValueAt(0).AsString());
    }
    return names;
  }

  Catalog catalog_;
};

TEST_F(OrderByTest, ParsesIntoAst) {
  ASSERT_OK_AND_ASSIGN(
      auto q, sql::ParseQuery(
                  "SELECT NAME FROM People ORDER BY AGE DESC, D"));
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].by_degree);
  EXPECT_TRUE(q->order_by[0].descending);
  EXPECT_TRUE(q->order_by[1].by_degree);
  // Round trips through ToString.
  ASSERT_OK_AND_ASSIGN(auto q2, sql::ParseQuery(q->ToString()));
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST_F(OrderByTest, OrdersByDefuzzifiedValue) {
  const Relation ascending =
      Run("SELECT NAME, AGE FROM People ORDER BY AGE");
  EXPECT_EQ(Names(ascending),
            (std::vector<std::string>{"ana", "bo", "carol"}));
  const Relation descending =
      Run("SELECT NAME, AGE FROM People ORDER BY AGE DESC");
  EXPECT_EQ(Names(descending),
            (std::vector<std::string>{"carol", "bo", "ana"}));
}

TEST_F(OrderByTest, OrdersByDegree) {
  const Relation by_degree = Run("SELECT NAME FROM People ORDER BY D DESC");
  EXPECT_EQ(Names(by_degree),
            (std::vector<std::string>{"ana", "bo", "carol"}));
}

TEST_F(OrderByTest, OrdersByStringColumn) {
  const Relation by_name = Run("SELECT NAME FROM People ORDER BY NAME");
  EXPECT_EQ(Names(by_name),
            (std::vector<std::string>{"ana", "bo", "carol"}));
}

TEST_F(OrderByTest, WithClauseComposes) {
  const Relation answer =
      Run("SELECT NAME FROM People ORDER BY D DESC WITH D >= 0.6");
  EXPECT_EQ(Names(answer), (std::vector<std::string>{"ana", "bo"}));
  // Clause order is flexible.
  const Relation swapped =
      Run("SELECT NAME FROM People WITH D >= 0.6 ORDER BY D DESC");
  EXPECT_EQ(Names(swapped), (std::vector<std::string>{"ana", "bo"}));
}

TEST_F(OrderByTest, RejectedInSubqueries) {
  const auto result = sql::ParseAndBind(
      "SELECT NAME FROM People WHERE AGE IN "
      "(SELECT AGE FROM People ORDER BY AGE)",
      catalog_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(OrderByTest, UnknownOrderColumnFails) {
  const auto result =
      sql::ParseAndBind("SELECT NAME FROM People ORDER BY WEIGHT", catalog_);
  ASSERT_FALSE(result.ok());
}

TEST_F(OrderByTest, UnnestingEvaluatorAlsoOrders) {
  Catalog catalog = testing_util::MakePaperCatalog();
  ASSERT_OK_AND_ASSIGN(auto bound, sql::ParseAndBind(R"sql(
      SELECT F.NAME FROM F
      WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)
      ORDER BY NAME DESC)sql",
                                                     catalog));
  UnnestingEvaluator engine;
  ASSERT_OK_AND_ASSIGN(Relation answer, engine.Evaluate(*bound));
  ASSERT_GE(answer.NumTuples(), 2u);
  for (size_t i = 1; i < answer.NumTuples(); ++i) {
    EXPECT_GE(answer.TupleAt(i - 1).ValueAt(0).AsString(),
              answer.TupleAt(i).ValueAt(0).AsString());
  }
}

}  // namespace
}  // namespace fuzzydb
