// Shared helpers for the fuzzydb test suite.
#ifndef FUZZYDB_TESTS_TEST_UTIL_H_
#define FUZZYDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzzy/degree.h"
#include "fuzzy/trapezoid.h"
#include "relational/catalog.h"
#include "relational/relation.h"

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    const ::fuzzydb::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    const ::fuzzydb::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                       \
  ASSERT_OK_AND_ASSIGN_IMPL(                                   \
      FUZZYDB_ASSIGN_OR_RETURN_NAME(_r_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(var, lhs, rexpr)             \
  auto var = (rexpr);                                          \
  ASSERT_TRUE(var.ok()) << var.status().ToString();            \
  lhs = std::move(var).value()

namespace fuzzydb {
namespace testing_util {

/// Brute-force oracle for sup_{x theta y} min(mu_X(x), mu_Y(y)) by dense
/// grid sampling (plus the exact corner abscissae, so vertical edges are
/// sampled at their corners). Order comparators use prefix/suffix maxima,
/// so a call is O(steps log steps). Accurate to roughly the membership
/// change across one grid step; compare with a tolerance of a few
/// (max slope) x (grid pitch).
inline double BruteForceDegree(const Trapezoid& x, CompareOp op,
                               const Trapezoid& y, int steps = 4000) {
  if (op == CompareOp::kGt) return BruteForceDegree(y, CompareOp::kLt, x, steps);
  if (op == CompareOp::kGe) return BruteForceDegree(y, CompareOp::kLe, x, steps);

  const double lo = std::min(x.SupportBegin(), y.SupportBegin()) - 1.0;
  const double hi = std::max(x.SupportEnd(), y.SupportEnd()) + 1.0;
  const double step = (hi - lo) / steps;

  std::vector<double> points;
  points.reserve(steps + 9);
  for (int i = 0; i <= steps; ++i) points.push_back(lo + i * step);
  for (double corner :
       {x.a(), x.b(), x.c(), x.d(), y.a(), y.b(), y.c(), y.d()}) {
    points.push_back(corner);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();

  std::vector<double> mx(n), my(n);
  for (size_t i = 0; i < n; ++i) {
    mx[i] = x.Membership(points[i]);
    my[i] = y.Membership(points[i]);
  }

  double best = 0.0;
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i) best = std::max(best, std::min(mx[i], my[i]));
      return best;
    case CompareOp::kNe: {
      // Take the best mu_X point and the best mu_Y point elsewhere (and
      // vice versa); exact on the grid.
      size_t ax = 0, ay = 0;
      for (size_t i = 0; i < n; ++i) {
        if (mx[i] > mx[ax]) ax = i;
        if (my[i] > my[ay]) ay = i;
      }
      double other_y = 0.0, other_x = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (i != ax) other_y = std::max(other_y, my[i]);
        if (i != ay) other_x = std::max(other_x, mx[i]);
      }
      return std::max(std::min(mx[ax], other_y), std::min(other_x, my[ay]));
    }
    case CompareOp::kLe:
    case CompareOp::kLt: {
      // suffix_y[i] = max_{j >= i} my[j]; for kLt use j > i.
      std::vector<double> suffix_y(n + 1, 0.0);
      for (size_t i = n; i-- > 0;) {
        suffix_y[i] = std::max(suffix_y[i + 1], my[i]);
      }
      for (size_t i = 0; i < n; ++i) {
        const double reach = op == CompareOp::kLe ? suffix_y[i] : suffix_y[i + 1];
        best = std::max(best, std::min(mx[i], reach));
      }
      return best;
    }
    default:
      return 0.0;  // kApproxEq unsupported by this oracle
  }
}

/// Builds a single-column fuzzy relation from (value, degree) pairs.
inline Relation MakeSet(const std::string& name,
                        const std::vector<std::pair<Trapezoid, double>>& items) {
  Relation relation(name, Schema{Column{"Z", ValueType::kFuzzy}});
  for (const auto& [value, degree] : items) {
    EXPECT_OK(relation.Append(Tuple({Value::Fuzzy(value)}, degree)));
  }
  return relation;
}

/// Finds the degree of the tuple whose first value is the string `key`
/// in `relation`; -1 when absent.
inline double DegreeOf(const Relation& relation, const std::string& key) {
  for (const Tuple& t : relation.tuples()) {
    if (t.ValueAt(0).is_string() && t.ValueAt(0).AsString() == key) {
      return t.degree();
    }
  }
  return -1.0;
}

/// Finds the degree of the tuple whose first value is the crisp number
/// `key`; -1 when absent.
inline double DegreeOf(const Relation& relation, double key) {
  for (const Tuple& t : relation.tuples()) {
    if (t.ValueAt(0).is_fuzzy() && t.ValueAt(0).AsFuzzy().IsCrisp() &&
        t.ValueAt(0).AsFuzzy().CrispValue() == key) {
      return t.degree();
    }
  }
  return -1.0;
}

/// Builds the paper's dating-service database (Example 4.1): relations
/// F and M with schema (ID, NAME, AGE, INCOME) and the exact tuples of
/// the example, all with membership degree 1.
inline Catalog MakePaperCatalog() {
  Catalog catalog;
  const Schema schema{Column{"ID", ValueType::kFuzzy},
                      Column{"NAME", ValueType::kString},
                      Column{"AGE", ValueType::kFuzzy},
                      Column{"INCOME", ValueType::kFuzzy}};
  auto term = [&](const std::string& name) {
    auto result = catalog.terms().Lookup(name);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return Value::Fuzzy(result.ok() ? result.value() : Trapezoid());
  };

  Relation f("F", schema);
  EXPECT_OK(f.Append(Tuple({Value::Number(101), Value::String("Ann"),
                            term("about 35"), term("about 60k")},
                           1.0)));
  EXPECT_OK(f.Append(Tuple({Value::Number(102), Value::String("Ann"),
                            term("medium young"), term("medium high")},
                           1.0)));
  EXPECT_OK(f.Append(Tuple({Value::Number(103), Value::String("Betty"),
                            term("middle age"), term("high")},
                           1.0)));
  EXPECT_OK(f.Append(Tuple({Value::Number(104), Value::String("Cathy"),
                            term("about 50"), term("low")},
                           1.0)));
  EXPECT_OK(catalog.AddRelation(std::move(f)));

  Relation m("M", schema);
  EXPECT_OK(m.Append(Tuple({Value::Number(201), Value::String("Allen"),
                            Value::Number(24), term("about 25k")},
                           1.0)));
  EXPECT_OK(m.Append(Tuple({Value::Number(202), Value::String("Allen"),
                            term("about 50"), term("about 40k")},
                           1.0)));
  EXPECT_OK(m.Append(Tuple({Value::Number(203), Value::String("Bill"),
                            term("middle age"), term("high")},
                           1.0)));
  EXPECT_OK(m.Append(Tuple({Value::Number(204), Value::String("Carl"),
                            term("about 29"), term("medium low")},
                           1.0)));
  EXPECT_OK(catalog.AddRelation(std::move(m)));
  return catalog;
}

}  // namespace testing_util
}  // namespace fuzzydb

#endif  // FUZZYDB_TESTS_TEST_UTIL_H_
