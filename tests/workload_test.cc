#include "workload/generator.h"

#include <gtest/gtest.h>

#include "fuzzy/interval_order.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

TEST(WorkloadTest, Deterministic) {
  WorkloadConfig config;
  config.seed = 5;
  config.num_r = 50;
  config.num_s = 50;
  TypeJDataset a = GenerateTypeJDataset(config);
  TypeJDataset b = GenerateTypeJDataset(config);
  ASSERT_EQ(a.r.NumTuples(), b.r.NumTuples());
  for (size_t i = 0; i < a.r.NumTuples(); ++i) {
    EXPECT_TRUE(a.r.TupleAt(i).SameValues(b.r.TupleAt(i)));
  }
}

TEST(WorkloadTest, SizesMatchConfig) {
  WorkloadConfig config;
  config.num_r = 123;
  config.num_s = 77;
  TypeJDataset d = GenerateTypeJDataset(config);
  EXPECT_EQ(d.r.NumTuples(), 123u);
  EXPECT_EQ(d.s.NumTuples(), 77u);
  EXPECT_EQ(d.r.schema().NumColumns(), 3u);
  EXPECT_EQ(d.s.schema().NumColumns(), 2u);
}

TEST(WorkloadTest, AverageFanoutIsApproximatelyC) {
  for (double c : {1.0, 4.0, 16.0}) {
    WorkloadConfig config;
    config.seed = 77;
    config.num_r = 400;
    config.num_s = 400;
    config.join_fanout = c;
    TypeJDataset d = GenerateTypeJDataset(config);

    // Count joining pairs: same group AND positive fuzzy equality.
    uint64_t pairs = 0;
    for (const Tuple& r : d.r.tuples()) {
      for (const Tuple& s : d.s.tuples()) {
        if (r.ValueAt(2).Compare(CompareOp::kEq, s.ValueAt(1)) <= 0.0) {
          continue;
        }
        if (r.ValueAt(1).Compare(CompareOp::kEq, s.ValueAt(0)) > 0.0) {
          ++pairs;
        }
      }
    }
    const double fanout = static_cast<double>(pairs) / config.num_r;
    EXPECT_NEAR(fanout, c, c * 0.35) << "C=" << c;
  }
}

TEST(WorkloadTest, GroupsNeverOverlapAcross) {
  WorkloadConfig config;
  config.seed = 3;
  config.num_r = 200;
  config.num_s = 200;
  config.join_fanout = 8;
  TypeJDataset d = GenerateTypeJDataset(config);
  // Any two values from different groups must have disjoint supports.
  for (const Tuple& r : d.r.tuples()) {
    for (const Tuple& s : d.s.tuples()) {
      const bool same_group =
          r.ValueAt(2).Identical(s.ValueAt(1));
      const bool overlap = SupportsIntersect(r.ValueAt(1).AsFuzzy(),
                                             s.ValueAt(0).AsFuzzy());
      if (!same_group) {
        EXPECT_FALSE(overlap);
      } else {
        // Same group: positive equality degree by construction.
        EXPECT_GT(r.ValueAt(1).Compare(CompareOp::kEq, s.ValueAt(0)), 0.0);
      }
    }
  }
}

TEST(WorkloadTest, FuzzyFractionRespected) {
  WorkloadConfig config;
  config.seed = 8;
  config.num_s = 1000;
  config.fuzzy_fraction = 0.3;
  TypeJDataset d = GenerateTypeJDataset(config);
  size_t fuzzy = 0;
  for (const Tuple& s : d.s.tuples()) {
    fuzzy += !s.ValueAt(0).AsFuzzy().IsCrisp();
  }
  EXPECT_NEAR(static_cast<double>(fuzzy) / config.num_s, 0.3, 0.05);
}

TEST(WorkloadTest, RandomRelationHasRequestedShape) {
  Relation r = GenerateRandomRelation(4, "R", 3, 25);
  EXPECT_EQ(r.schema().NumColumns(), 3u);
  EXPECT_EQ(r.NumTuples(), 25u);
  for (const Tuple& t : r.tuples()) {
    EXPECT_GT(t.degree(), 0.0);
    EXPECT_LE(t.degree(), 1.0);
    for (size_t c = 0; c < t.NumValues(); ++c) {
      EXPECT_TRUE(t.ValueAt(c).is_fuzzy());
    }
  }
}

}  // namespace
}  // namespace fuzzydb
