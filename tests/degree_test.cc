#include "fuzzy/degree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzzy/trapezoid.h"
#include "test_util.h"

namespace fuzzydb {
namespace {

using testing_util::BruteForceDegree;

// ---------------------------------------------------------------------
// Equality degrees: hand-computed cases, including the paper's figures.
// ---------------------------------------------------------------------

TEST(EqualityDegreeTest, PaperFig1About35VsMediumYoung) {
  const Trapezoid medium_young(20, 25, 30, 35);
  const Trapezoid about_35 = Trapezoid::Triangle(30, 35, 40);
  // Section 2.2: d(F.AGE = M.AGE) = 0.5 when one is "about 35" and the
  // other "medium young" (Fig. 1).
  EXPECT_DOUBLE_EQ(EqualityDegree(about_35, medium_young), 0.5);
  EXPECT_DOUBLE_EQ(EqualityDegree(medium_young, about_35), 0.5);
}

TEST(EqualityDegreeTest, PaperFig1CrispAge24) {
  const Trapezoid medium_young(20, 25, 30, 35);
  // d(24 = medium young) = mu_medium_young(24) = 0.8.
  EXPECT_DOUBLE_EQ(EqualityDegree(Trapezoid::Crisp(24), medium_young), 0.8);
}

TEST(EqualityDegreeTest, DisjointSupportsGiveZero) {
  EXPECT_DOUBLE_EQ(
      EqualityDegree(Trapezoid(0, 1, 2, 3), Trapezoid(5, 6, 7, 8)), 0.0);
}

TEST(EqualityDegreeTest, TouchingSupportsAtZeroMembershipGiveZero) {
  // Supports touch at 3, but both memberships are 0 there.
  EXPECT_DOUBLE_EQ(
      EqualityDegree(Trapezoid(0, 1, 2, 3), Trapezoid(3, 4, 5, 6)), 0.0);
}

TEST(EqualityDegreeTest, TouchingCoresGiveOne) {
  // X's core ends at 3 (vertical fall), Y's core starts at 3 (vertical
  // rise): the value 3 is fully possible in both.
  EXPECT_DOUBLE_EQ(
      EqualityDegree(Trapezoid(0, 1, 3, 3), Trapezoid(3, 3, 5, 6)), 1.0);
}

TEST(EqualityDegreeTest, OverlappingCoresGiveOne) {
  EXPECT_DOUBLE_EQ(
      EqualityDegree(Trapezoid(0, 2, 6, 8), Trapezoid(4, 5, 9, 12)), 1.0);
}

TEST(EqualityDegreeTest, IdenticalCrispValues) {
  EXPECT_DOUBLE_EQ(
      EqualityDegree(Trapezoid::Crisp(5), Trapezoid::Crisp(5)), 1.0);
  EXPECT_DOUBLE_EQ(
      EqualityDegree(Trapezoid::Crisp(5), Trapezoid::Crisp(5.1)), 0.0);
}

TEST(EqualityDegreeTest, CrispInsideFuzzy) {
  const Trapezoid t(10, 20, 30, 40);
  EXPECT_DOUBLE_EQ(EqualityDegree(Trapezoid::Crisp(25), t), 1.0);
  EXPECT_DOUBLE_EQ(EqualityDegree(Trapezoid::Crisp(15), t), 0.5);
  EXPECT_DOUBLE_EQ(EqualityDegree(Trapezoid::Crisp(35), t), 0.5);
  EXPECT_DOUBLE_EQ(EqualityDegree(Trapezoid::Crisp(10), t), 0.0);
}

TEST(EqualityDegreeTest, VerticalEdgeAgainstSlope) {
  // X jumps to 1 at 31.5 ("middle age"); Y falls 30 -> 35.
  const Trapezoid middle_age(31.5, 31.5, 44, 49);
  const Trapezoid medium_young(20, 25, 30, 35);
  EXPECT_DOUBLE_EQ(EqualityDegree(middle_age, medium_young), 0.7);
}

// ---------------------------------------------------------------------
// Order comparisons.
// ---------------------------------------------------------------------

TEST(OrderDegreeTest, CrispPairs) {
  const Trapezoid a = Trapezoid::Crisp(3), b = Trapezoid::Crisp(5);
  EXPECT_DOUBLE_EQ(LessDegree(a, b), 1.0);
  EXPECT_DOUBLE_EQ(LessDegree(b, a), 0.0);
  EXPECT_DOUBLE_EQ(LessDegree(a, a), 0.0);   // strict
  EXPECT_DOUBLE_EQ(LessEqualDegree(a, a), 1.0);
  EXPECT_DOUBLE_EQ(LessEqualDegree(b, a), 0.0);
}

TEST(OrderDegreeTest, ClearlyOrderedFuzzyValues) {
  const Trapezoid low(0, 1, 2, 3), high(10, 11, 12, 13);
  EXPECT_DOUBLE_EQ(LessDegree(low, high), 1.0);
  EXPECT_DOUBLE_EQ(LessDegree(high, low), 0.0);
  EXPECT_DOUBLE_EQ(LessEqualDegree(low, high), 1.0);
  EXPECT_DOUBLE_EQ(LessEqualDegree(high, low), 0.0);
}

TEST(OrderDegreeTest, OverlappingFuzzyValuesPartialInBothDirections) {
  const Trapezoid x(0, 2, 4, 6), y(3, 5, 7, 9);
  EXPECT_DOUBLE_EQ(LessDegree(x, y), 1.0);   // x can clearly be below y
  // Poss(y < x): need y-values below x-values; overlap [3, 6].
  const double d = LessDegree(y, x);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
  EXPECT_NEAR(d, BruteForceDegree(y, CompareOp::kLt, x), 5e-3);
}

TEST(OrderDegreeTest, StrictVsNonStrictAtVerticalEdges) {
  // X crisp at 5; Y rectangular [5, 5] x [5, 10]... Y = (5,5,10,10).
  const Trapezoid x = Trapezoid::Crisp(5);
  const Trapezoid y(5, 5, 10, 10);
  EXPECT_DOUBLE_EQ(LessEqualDegree(x, y), 1.0);
  // Strictly less: y can be anything in (5, 10], fully possible.
  EXPECT_DOUBLE_EQ(LessDegree(x, y), 1.0);
  // Y strictly below x: impossible values below 5.
  EXPECT_DOUBLE_EQ(LessDegree(y, x), 0.0);
  EXPECT_DOUBLE_EQ(LessEqualDegree(y, x), 1.0);  // y may be exactly 5
}

TEST(OrderDegreeTest, StrictLessAgainstLeftVerticalEdge) {
  // X = [5,5,7,9]: support starts with a vertical edge at 5.
  const Trapezoid x(5, 5, 7, 9);
  // Poss(X < 5): X has no mass strictly below 5.
  EXPECT_DOUBLE_EQ(LessDegree(x, Trapezoid::Crisp(5)), 0.0);
  // But Poss(X <= 5) = mu_X(5) = 1.
  EXPECT_DOUBLE_EQ(LessEqualDegree(x, Trapezoid::Crisp(5)), 1.0);
}

TEST(OrderDegreeTest, GreaterDerivedBySymmetry) {
  const Trapezoid x(0, 2, 4, 6), y(3, 5, 7, 9);
  EXPECT_DOUBLE_EQ(SatisfactionDegree(x, CompareOp::kGt, y),
                   LessDegree(y, x));
  EXPECT_DOUBLE_EQ(SatisfactionDegree(x, CompareOp::kGe, y),
                   LessEqualDegree(y, x));
}

// ---------------------------------------------------------------------
// Not-equal and approximate equality.
// ---------------------------------------------------------------------

TEST(NotEqualDegreeTest, Cases) {
  EXPECT_DOUBLE_EQ(
      NotEqualDegree(Trapezoid::Crisp(3), Trapezoid::Crisp(3)), 0.0);
  EXPECT_DOUBLE_EQ(
      NotEqualDegree(Trapezoid::Crisp(3), Trapezoid::Crisp(4)), 1.0);
  EXPECT_DOUBLE_EQ(
      NotEqualDegree(Trapezoid::Crisp(3), Trapezoid(1, 2, 4, 5)), 1.0);
  EXPECT_DOUBLE_EQ(
      NotEqualDegree(Trapezoid(1, 2, 4, 5), Trapezoid(1, 2, 4, 5)), 1.0);
}

TEST(ApproxEqualDegreeTest, ToleranceWidensEquality) {
  const Trapezoid x = Trapezoid::Crisp(10), y = Trapezoid::Crisp(12);
  EXPECT_DOUBLE_EQ(EqualityDegree(x, y), 0.0);
  EXPECT_DOUBLE_EQ(ApproxEqualDegree(x, y, 4.0), 0.5);  // 1 - 2/4
  EXPECT_DOUBLE_EQ(ApproxEqualDegree(x, y, 2.0), 0.0);  // touches at 0
  EXPECT_DOUBLE_EQ(ApproxEqualDegree(x, y, 8.0), 0.75);
  EXPECT_DOUBLE_EQ(ApproxEqualDegree(x, x, 1.0), 1.0);
}

TEST(ApproxEqualDegreeTest, SymmetricForCrispValues) {
  const Trapezoid x = Trapezoid::Crisp(10), y = Trapezoid::Crisp(13);
  EXPECT_DOUBLE_EQ(ApproxEqualDegree(x, y, 6.0), ApproxEqualDegree(y, x, 6.0));
}

// ---------------------------------------------------------------------
// Property sweep: analytic degrees match the brute-force oracle over
// random trapezoid pairs for every comparator.
// ---------------------------------------------------------------------

class DegreeOracleTest : public ::testing::TestWithParam<uint64_t> {};

Trapezoid RandomTrapezoid(Rng* rng) {
  // Half-integer corners over a small domain; includes degenerate shapes.
  double corners[4];
  for (double& c : corners) {
    c = static_cast<double>(rng->UniformInt(0, 40)) / 2.0;
  }
  std::sort(corners, corners + 4);
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return Trapezoid::Crisp(corners[0]);
    case 1:
      return Trapezoid::Interval(corners[0], corners[2]);
    case 2:
      return Trapezoid::Triangle(corners[0], corners[1], corners[3]);
    default:
      return Trapezoid(corners[0], corners[1], corners[2], corners[3]);
  }
}

TEST_P(DegreeOracleTest, AnalyticMatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const Trapezoid x = RandomTrapezoid(&rng);
    const Trapezoid y = RandomTrapezoid(&rng);
    for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kLe,
                         CompareOp::kGt, CompareOp::kGe, CompareOp::kNe}) {
      const double analytic = SatisfactionDegree(x, op, y);
      const double sampled = BruteForceDegree(x, op, y, 4000);
      // Corners are half-integers, so edge slopes are at most 2 and the
      // oracle's grid error is bounded by ~2x the grid pitch.
      EXPECT_NEAR(analytic, sampled, 0.025)
          << "op=" << CompareOpName(op) << " x=" << x.ToString()
          << " y=" << y.ToString();
    }
  }
}

TEST_P(DegreeOracleTest, EqualitySymmetryAndBounds) {
  Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ULL);
  for (int trial = 0; trial < 200; ++trial) {
    const Trapezoid x = RandomTrapezoid(&rng);
    const Trapezoid y = RandomTrapezoid(&rng);
    const double d = EqualityDegree(x, y);
    EXPECT_DOUBLE_EQ(d, EqualityDegree(y, x));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
    // Reflexivity: every normalized value equals itself with degree 1.
    EXPECT_DOUBLE_EQ(EqualityDegree(x, x), 1.0);
    // Le/Ge duality.
    EXPECT_DOUBLE_EQ(LessEqualDegree(x, y),
                     SatisfactionDegree(y, CompareOp::kGe, x));
    // Monotonicity: a value is <= or >= another at least as possibly as
    // it is strictly so.
    EXPECT_GE(LessEqualDegree(x, y), LessDegree(x, y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegreeOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fuzzydb
