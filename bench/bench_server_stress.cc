// Multi-session server stress: N concurrent TCP clients against the
// admission-controlled server, checked bit-identical to a serial shell
// baseline.
//
// Three measured configurations:
//
//   serial_baseline  the whole seeded workload through one Session on
//                    the calling thread -- the reference answers and the
//                    single-session cost.
//   served_4clients  4 concurrent TCP clients through a 4-worker server;
//                    every client runs the same workload, and every
//                    reply frame (status, text, columns, rows, degrees)
//                    must be BIT-IDENTICAL to the serial baseline --
//                    the bench aborts otherwise, so the report can only
//                    exist for answer-preserving concurrency.
//   overload_shed    4 clients racing one slow query into a 1-worker,
//                    depth-1 queue: at least one reply must shed as
//                    RESOURCE_EXHAUSTED and at least one must answer OK
//                    (admission control degrades, never hangs).
//
// Counters (ios, pairs) are engine-side and the server runs multiple
// sessions concurrently, so the report carries threads=4 and the
// regression gate holds wall/cpu times by ratio only.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"

namespace fuzzydb {
namespace bench {
namespace {

using server::ParseReplyFrame;
using server::ReplyFrame;
using server::Server;
using server::ServerConfig;
using server::Session;
using server::SessionDefaults;

// The seeded per-session workload (same shape as tools/stress_client.py
// and the server_test determinism matrix): DDL, inserts, then fuzzy
// selects including a nested type J query.
std::vector<std::string> Workload(size_t queries) {
  std::vector<std::string> lines = {
      "CREATE TABLE emp (name STRING, sal FUZZY, dept STRING);",
      "CREATE TABLE dept (dname STRING, budget FUZZY);",
  };
  for (int d = 0; d < 3; ++d) {
    lines.push_back("INSERT INTO dept VALUES ('d" + std::to_string(d) +
                    "', ABOUT(" + std::to_string(100 + 50 * d) + ", 25));");
  }
  for (int r = 0; r < 16; ++r) {
    lines.push_back("INSERT INTO emp VALUES ('e" + std::to_string(r) +
                    "', ABOUT(" + std::to_string(80 + 11 * r) + ", 15), 'd" +
                    std::to_string(r % 3) + "');");
  }
  uint32_t state = 0x9E3779B9u;
  for (size_t i = 0; i < queries; ++i) {
    state = state * 1103515245u + 12345u;
    const int threshold = 90 + static_cast<int>((state >> 8) % 120u);
    const int dept = static_cast<int>((state >> 4) % 3u);
    switch (state % 3u) {
      case 0:
        lines.push_back("SELECT name FROM emp WHERE sal > ABOUT(" +
                        std::to_string(threshold) +
                        ", 10) WITH D >= 0.5;");
        break;
      case 1:
        lines.push_back("SELECT name FROM emp WHERE sal > ABOUT(" +
                        std::to_string(threshold) + ", 10) AND dept = 'd" +
                        std::to_string(dept) + "' WITH D >= 0.3;");
        break;
      default:
        lines.push_back(
            "SELECT name FROM emp WHERE sal > ANY (SELECT budget FROM "
            "dept WHERE dname = 'd" +
            std::to_string(dept) + "') WITH D >= 0.3;");
    }
  }
  return lines;
}

/// The answer-bearing fields that must match the serial baseline.
std::string NormalizeFrame(const ReplyFrame& frame) {
  std::string key = frame.status + "|" + frame.text + "|";
  for (const std::string& column : frame.columns) key += column + ",";
  key += "|";
  for (size_t i = 0; i < frame.rows.size(); ++i) {
    for (const std::string& value : frame.rows[i]) key += value + ",";
    char degree[32];
    std::snprintf(degree, sizeof(degree), "%.17g", frame.degrees[i]);
    key += "@";
    key += degree;
    key += ";";
  }
  return key;
}

// Minimal blocking line-protocol client.
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool Roundtrip(const std::string& line, ReplyFrame* frame) {
    const std::string data = line + "\n";
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + written,
                               data.size() - written, MSG_NOSIGNAL);
      if (n <= 0) return false;
      written += static_cast<size_t>(n);
    }
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string reply = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return ParseReplyFrame(reply, frame);
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

double WallNow() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

double CpuNow() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "bench_server_stress: %s\n", message.c_str());
  return 1;
}

}  // namespace

int Run(int argc, char** argv) {
  PrintHeader("Multi-session server stress",
              "server mode: concurrent clients, admission control");
  const size_t kQueries = SmokeRows(400, 24);
  constexpr int kClients = 4;
  const std::vector<std::string> workload = Workload(kQueries);
  BenchReport report("server_stress", /*threads=*/kClients);

  // ---- serial_baseline ------------------------------------------------
  std::vector<std::string> baseline;
  {
    const double wall0 = WallNow();
    const double cpu0 = CpuNow();
    Session session(1, SessionDefaults{}, 0);
    baseline.reserve(workload.size());
    for (const std::string& line : workload) {
      const ReplyFrame frame = session.Execute(line);
      if (frame.status != "OK") {
        return Fail("baseline statement failed: " + frame.error);
      }
      baseline.push_back(NormalizeFrame(frame));
    }
    ExecStats stats;
    stats.total_seconds = WallNow() - wall0;
    stats.cpu_seconds = CpuNow() - cpu0;
    report.Add("serial_baseline", stats);
    std::printf("  serial_baseline   %s  (%zu statements)\n",
                Seconds(stats.total_seconds).c_str(), workload.size());
  }

  // ---- served_4clients ------------------------------------------------
  {
    ServerConfig config;
    config.workers = 4;
    config.queue_depth = 64;
    Server server(config);
    if (!server.Start().ok()) return Fail("server failed to start");

    const double wall0 = WallNow();
    const double cpu0 = CpuNow();
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&errors, &workload, &baseline, &server, c] {
        Client client;
        if (!client.Connect(server.port())) {
          errors[c] = "connect failed";
          return;
        }
        for (size_t i = 0; i < workload.size(); ++i) {
          ReplyFrame frame;
          if (!client.Roundtrip(workload[i], &frame)) {
            errors[c] = "protocol error at line " + std::to_string(i);
            return;
          }
          // Bit-identical or bust: a served answer that differs from
          // the serial shell is a correctness bug, not a perf result.
          if (NormalizeFrame(frame) != baseline[i]) {
            errors[c] = "answer mismatch at line " + std::to_string(i) +
                        " (" + workload[i] + ")\n  served: " +
                        NormalizeFrame(frame) + "\n  serial: " +
                        baseline[i];
            return;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (int c = 0; c < kClients; ++c) {
      if (!errors[c].empty()) {
        return Fail("client " + std::to_string(c) + ": " + errors[c]);
      }
    }
    ExecStats stats;
    stats.total_seconds = WallNow() - wall0;
    stats.cpu_seconds = CpuNow() - cpu0;
    report.Add("served_4clients", stats);
    server.Stop();
    std::printf("  served_4clients   %s  (4 x %zu statements, "
                "bit-identical to serial)\n",
                Seconds(stats.total_seconds).c_str(), workload.size());
  }

  // ---- overload_shed --------------------------------------------------
  {
    ServerConfig config;
    config.workers = 1;
    config.queue_depth = 1;
    Server server(config);
    if (!server.Start().ok()) return Fail("server failed to start");

    const double wall0 = WallNow();
    const double cpu0 = CpuNow();
    // Even in smoke mode the racing query must run long enough (a few
    // hundred ms) that all four clients overlap on the single worker.
    const size_t gen_rows = SmokeRows(5000, 2500);
    const std::string gen = ".gen typej 7 " + std::to_string(gen_rows) +
                            " " + std::to_string(gen_rows) + " " +
                            std::to_string(gen_rows);
    // Setup first, one client at a time (retrying shed replies), so the
    // slow queries below race the single worker simultaneously.
    std::vector<std::unique_ptr<Client>> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.push_back(std::make_unique<Client>());
      if (!clients.back()->Connect(server.port())) {
        return Fail("overload client connect failed");
      }
      ReplyFrame frame;
      for (int attempt = 0; attempt < 2000; ++attempt) {
        if (!clients.back()->Roundtrip(gen, &frame)) {
          return Fail("overload client protocol error during setup");
        }
        if (frame.status != "RESOURCE_EXHAUSTED") break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (frame.status != "OK") {
        return Fail("overload client setup failed: " + frame.error);
      }
    }
    std::vector<std::string> statuses(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&statuses, &clients, c] {
        ReplyFrame frame;
        if (!clients[c]->Roundtrip(
                "SELECT R.X FROM R WHERE R.Y IN "
                "(SELECT S.Z FROM S WHERE S.V = R.U);",
                &frame)) {
          statuses[c] = "PROTOCOL_ERROR";
          return;
        }
        statuses[c] = frame.status;
      });
    }
    for (std::thread& thread : threads) thread.join();
    int ok = 0;
    int shed = 0;
    for (int c = 0; c < kClients; ++c) {
      if (statuses[c] == "OK") {
        ++ok;
      } else if (statuses[c] == "RESOURCE_EXHAUSTED") {
        ++shed;
      } else {
        return Fail("client " + std::to_string(c) +
                    " unexpected outcome: " + statuses[c]);
      }
    }
    if (ok < 1) return Fail("no query was admitted under overload");
    if (shed < 1) return Fail("overload never shed RESOURCE_EXHAUSTED");
    ExecStats stats;
    stats.total_seconds = WallNow() - wall0;
    stats.cpu_seconds = CpuNow() - cpu0;
    report.Add("overload_shed", stats);
    server.Stop();
    std::printf("  overload_shed     %s  (%d admitted, %d shed)\n",
                Seconds(stats.total_seconds).c_str(), ok, shed);
  }

  const std::string json_out = JsonOutPath(argc, argv);
  if (!json_out.empty() && !report.Write(json_out)) return 1;
  return 0;
}

}  // namespace bench
}  // namespace fuzzydb

int main(int argc, char** argv) {
  return fuzzydb::bench::Run(argc, argv);
}
