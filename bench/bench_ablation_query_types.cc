// Ablation: unnesting gain per nested-query type.
//
// The paper's experiments (Section 9) use type J queries "to illustrate";
// Sections 4-8 claim the same O(n^2) -> O(n log n) improvement for all
// the catalogued types. This bench runs every type through both the
// naive evaluator (the nested-loop execution semantics) and the
// unnesting evaluator, on the same in-memory data, verifying the answers
// agree while reporting the speedup.
#include "bench_common.h"

#include "common/stopwatch.h"
#include "engine/naive_evaluator.h"
#include "engine/unnested_evaluator.h"
#include "sql/binder.h"

namespace {

using namespace fuzzydb;
using namespace fuzzydb::bench;

struct TypeCase {
  const char* name;
  const char* query;
  size_t tuples;  // per relation; the chain case uses fewer (3 levels)
};

const TypeCase kCases[] = {
    {"N", "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S)", 2000},
    {"J",
     "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)",
     2000},
    {"JX",
     "SELECT R.X FROM R WHERE R.Y NOT IN "
     "(SELECT S.Z FROM S WHERE S.V = R.U)",
     2000},
    {"JA(MAX)",
     "SELECT R.X FROM R WHERE R.Y <= "
     "(SELECT MAX(S.Z) FROM S WHERE S.V = R.U)",
     2000},
    {"JA(COUNT)",
     "SELECT R.X FROM R WHERE R.Y >= "
     "(SELECT COUNT(S.Z) FROM S WHERE S.V = R.U)",
     2000},
    {"JALL",
     "SELECT R.X FROM R WHERE R.Y <= ALL "
     "(SELECT S.Z FROM S WHERE S.V = R.U)",
     2000},
    {"JSOME",
     "SELECT R.X FROM R WHERE R.Y < SOME "
     "(SELECT S.Z FROM S WHERE S.V = R.U)",
     2000},
    {"JEXISTS",
     "SELECT R.X FROM R WHERE NOT EXISTS "
     "(SELECT S.Z FROM S WHERE S.V = R.U AND S.Z >= 0)",
     2000},
    {"MULTI",
     "SELECT R.X FROM R WHERE "
     "R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U) AND "
     "R.Y <= (SELECT MAX(S.Z) FROM S WHERE S.V = R.U)",
     2000},
    {"CHAIN-3",
     "SELECT R.X FROM R WHERE R.Y IN "
     "(SELECT S.Z FROM S WHERE S.V = R.U AND S.Z IN "
     "(SELECT T3.Z FROM T3 WHERE T3.V = S.V))",
     220},
};

}  // namespace

int main() {
  PrintHeader("Ablation -- unnesting speedup per nested-query type",
              "Yang et al., Sections 4-8 (Theorems 4.1-8.1)");

  std::printf("\n%10s | %12s %12s %8s | %8s %6s\n", "type", "naive(s)",
              "unnested(s)", "speedup", "answers", "equal");
  for (const TypeCase& test_case : kCases) {
    WorkloadConfig config;
    config.seed = 7100;
    config.num_r = test_case.tuples;
    config.num_s = test_case.tuples;
    config.join_fanout = 6;
    config.partial_membership_fraction = 0.4;
    TypeJDataset dataset = GenerateTypeJDataset(config);

    Catalog catalog;
    (void)catalog.AddRelation(dataset.r);
    (void)catalog.AddRelation(dataset.s);
    // Third relation for the chain case: same workload contract.
    WorkloadConfig t3_config = config;
    t3_config.seed = 7200;
    t3_config.num_r = 1;
    TypeJDataset third = GenerateTypeJDataset(t3_config);
    third.s.set_name("T3");
    (void)catalog.AddRelation(third.s);

    auto bound = sql::ParseAndBind(test_case.query, catalog);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed for %s: %s\n", test_case.name,
                   bound.status().ToString().c_str());
      return 1;
    }

    Stopwatch naive_watch;
    NaiveEvaluator naive;
    auto naive_answer = naive.Evaluate(**bound);
    const double naive_s = naive_watch.ElapsedSeconds();
    if (!naive_answer.ok()) return 1;

    Stopwatch unnested_watch;
    UnnestingEvaluator unnesting;
    auto unnested_answer = unnesting.Evaluate(**bound);
    const double unnested_s = unnested_watch.ElapsedSeconds();
    if (!unnested_answer.ok()) return 1;

    const bool equal = naive_answer->EquivalentTo(*unnested_answer, 1e-9);
    std::printf("%10s | %12s %12s %8s | %8zu %6s\n", test_case.name,
                Seconds(naive_s).c_str(), Seconds(unnested_s).c_str(),
                Ratio(naive_s / std::max(unnested_s, 1e-9)).c_str(),
                unnested_answer->NumTuples(), equal ? "yes" : "NO!");
    std::fflush(stdout);
    if (!equal) return 1;
  }

  std::printf(
      "\nExpected shape: every type shows an order-of-magnitude-or-more\n"
      "speedup from unnesting, with identical fuzzy answers -- the\n"
      "empirical counterpart of Theorems 4.1-8.1.\n");
  return 0;
}
