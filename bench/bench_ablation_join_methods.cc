// Ablation: which fuzzy join method wins?
//
// Section 3 of the paper compares nested loop and the extended merge-join
// and notes that partitioned joins based on sampling (as used for band
// joins [9] and valid-time joins [36]) are a further candidate: "More
// research is needed to decide the optimal join method." This bench runs
// all three on the same workloads, verifying identical answers.
#include "bench_common.h"

#include <map>

#include "common/stopwatch.h"
#include "engine/nested_loop_join.h"
#include "engine/partitioned_join.h"
#include "sort/external_sort.h"
#include "fuzzy/interval_order.h"

namespace {

using namespace fuzzydb;
using namespace fuzzydb::bench;

using Answer = std::map<double, double>;  // R.X -> max degree

FuzzyJoinSpec ExperimentSpec() {
  FuzzyJoinSpec spec;
  spec.outer_key = 1;   // R.Y
  spec.inner_key = 0;   // S.Z
  spec.residuals.push_back({2, 1, CompareOp::kEq});  // R.U = S.V
  return spec;
}

JoinEmit Accumulate(Answer* answer) {
  return [answer](const Tuple& r, const Tuple& s, double d) {
    (void)s;
    const double x = r.ValueAt(0).AsFuzzy().CrispValue();
    auto [it, fresh] = answer->emplace(x, d);
    if (!fresh && d > it->second) it->second = d;
    return Status::OK();
  };
}

}  // namespace

int main() {
  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Ablation -- nested loop vs merge-join vs partitioned join",
              "Yang et al., Section 3 closing discussion (open question)");

  std::printf("\n%8s %6s | %10s %10s %12s | %10s %10s %12s | %6s\n",
              "tuples", "C", "NL(s)", "merge(s)", "partition(s)", "NL-IO",
              "MJ-IO", "PJ-IO", "equal");
  for (size_t tuples : {4096, 16384}) {
    for (double c : {2.0, 16.0}) {
      WorkloadConfig config;
      config.seed = 8800 + tuples + static_cast<uint64_t>(c);
      config.num_r = tuples;
      config.num_s = tuples;
      config.join_fanout = c;
      auto files =
          MakeDatasetFiles(config, 128, "jm_" + std::to_string(tuples));
      if (!files.ok()) return 1;
      const FuzzyJoinSpec spec = ExperimentSpec();

      // Nested loop.
      Answer nl_answer;
      IoStats nl_io;
      Stopwatch nl_watch;
      if (!FileNestedLoopJoin(files->r.get(), files->s.get(), &nl_io,
                              kBufferPages, spec, nullptr,
                              Accumulate(&nl_answer))
               .ok()) {
        return 1;
      }
      const double nl_seconds = nl_watch.ElapsedSeconds();

      // Extended merge-join (sort + window).
      Answer mj_answer;
      IoStats mj_io;
      double mj_seconds = 0;
      {
        BufferPool pool(kBufferPages, &mj_io);
        Stopwatch watch;
        auto less_on = [](size_t col) {
          return TupleLess([col](const Tuple& a, const Tuple& b) {
            return IntervalOrderLess(a.ValueAt(col).AsFuzzy(),
                                     b.ValueAt(col).AsFuzzy());
          });
        };
        auto r_sorted = ExternalSort(
            files->r.get(), &pool, less_on(1), BenchDir() + "/jm_r",
            BenchDir() + "/jm_r.sorted", kBufferPages, 128);
        auto s_sorted = ExternalSort(
            files->s.get(), &pool, less_on(0), BenchDir() + "/jm_s",
            BenchDir() + "/jm_s.sorted", kBufferPages, 128);
        if (!r_sorted.ok() || !s_sorted.ok()) return 1;
        pool.Clear();
        if (!FileMergeJoin(r_sorted->get(), s_sorted->get(), &pool, spec,
                           nullptr, Accumulate(&mj_answer))
                 .ok()) {
          return 1;
        }
        mj_seconds = watch.ElapsedSeconds();
        RemoveFileIfExists(BenchDir() + "/jm_r.sorted");
        RemoveFileIfExists(BenchDir() + "/jm_s.sorted");
      }

      // Partitioned join.
      Answer pj_answer;
      IoStats pj_io;
      double pj_seconds = 0;
      {
        BufferPool pool(kBufferPages, &pj_io);
        Stopwatch watch;
        if (!FilePartitionedJoin(files->r.get(), files->s.get(), &pool, spec,
                                 /*num_partitions=*/16,
                                 BenchDir() + "/jm_part", nullptr,
                                 Accumulate(&pj_answer))
                 .ok()) {
          return 1;
        }
        pj_seconds = watch.ElapsedSeconds();
      }

      const bool equal = nl_answer == mj_answer && mj_answer == pj_answer;
      std::printf("%8zu %6.0f | %10s %10s %12s | %10llu %10llu %12llu | %6s\n",
                  tuples, c, Seconds(nl_seconds).c_str(),
                  Seconds(mj_seconds).c_str(), Seconds(pj_seconds).c_str(),
                  static_cast<unsigned long long>(nl_io.TotalIos()),
                  static_cast<unsigned long long>(mj_io.TotalIos()),
                  static_cast<unsigned long long>(pj_io.TotalIos()),
                  equal ? "yes" : "NO!");
      std::fflush(stdout);
      if (!equal) return 1;
    }
  }

  std::printf(
      "\nExpected shape: both sort-based and partition-based methods beat\n"
      "the quadratic nested loop by an order of magnitude at scale. The\n"
      "partitioned join trades the global external sort for one extra\n"
      "read+write of both relations plus outer replication; with compact\n"
      "supports (small replication) the two are close, confirming the\n"
      "paper's conjecture that partitioning is a viable alternative.\n");
  return 0;
}
