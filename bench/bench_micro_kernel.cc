// Microbenchmarks of the fuzzy kernel (google-benchmark): the satisfaction
// degrees and the interval-order comparisons are the inner loop of every
// query, so their cost dominates the CPU side of the paper's experiments.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fuzzy/arithmetic.h"
#include "fuzzy/degree.h"
#include "fuzzy/interval_order.h"

namespace fuzzydb {
namespace {

std::vector<Trapezoid> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trapezoid> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double c[4];
    for (double& v : c) v = rng.UniformDouble(0, 1000);
    std::sort(c, c + 4);
    values.emplace_back(c[0], c[1], c[2], c[3]);
  }
  return values;
}

void BM_EqualityDegree(benchmark::State& state) {
  const auto values = RandomValues(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = values[i % values.size()];
    const auto& y = values[(i * 7 + 3) % values.size()];
    benchmark::DoNotOptimize(EqualityDegree(x, y));
    ++i;
  }
}
BENCHMARK(BM_EqualityDegree);

void BM_LessEqualDegree(benchmark::State& state) {
  const auto values = RandomValues(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = values[i % values.size()];
    const auto& y = values[(i * 5 + 1) % values.size()];
    benchmark::DoNotOptimize(LessEqualDegree(x, y));
    ++i;
  }
}
BENCHMARK(BM_LessEqualDegree);

void BM_ApproxEqualDegree(benchmark::State& state) {
  const auto values = RandomValues(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = values[i % values.size()];
    const auto& y = values[(i * 11 + 5) % values.size()];
    benchmark::DoNotOptimize(ApproxEqualDegree(x, y, 10.0));
    ++i;
  }
}
BENCHMARK(BM_ApproxEqualDegree);

void BM_IntervalOrderCompare(benchmark::State& state) {
  const auto values = RandomValues(1024, 4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareIntervalOrder(
        values[i % values.size()], values[(i + 1) % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_IntervalOrderCompare);

void BM_FuzzyAdd(benchmark::State& state) {
  const auto values = RandomValues(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FuzzyAdd(values[i % values.size()],
                                      values[(i + 13) % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_FuzzyAdd);

void BM_CrispVsFuzzyEquality(benchmark::State& state) {
  // The CPU-cost asymmetry the paper cites: fuzzy predicates cost more
  // than crisp ones.
  const Trapezoid crisp_a = Trapezoid::Crisp(10), crisp_b = Trapezoid::Crisp(11);
  const Trapezoid fuzzy_a(8, 9, 11, 12), fuzzy_b(10, 11, 13, 14);
  const bool fuzzy = state.range(0) != 0;
  for (auto _ : state) {
    if (fuzzy) {
      benchmark::DoNotOptimize(EqualityDegree(fuzzy_a, fuzzy_b));
    } else {
      benchmark::DoNotOptimize(EqualityDegree(crisp_a, crisp_b));
    }
  }
}
BENCHMARK(BM_CrispVsFuzzyEquality)->Arg(0)->Arg(1);

}  // namespace
}  // namespace fuzzydb

BENCHMARK_MAIN();
