// Microbenchmarks of the fuzzy kernel (google-benchmark): the satisfaction
// degrees and the interval-order comparisons are the inner loop of every
// query, so their cost dominates the CPU side of the paper's experiments.
//
// Two modes:
//   bench_micro_kernel                 google-benchmark timings, scalar
//                                      and batch kernels side by side
//   bench_micro_kernel --json-out=P    deterministic BENCH_kernel.json
//                                      report for tools/bench_check.py
//                                      (exact degree_evaluations counters
//                                      plus ratio-tolerant wall times)
//
// The scalar/batch comparisons run per input family, because the two
// paths share the exact-sweep arithmetic (bit-identity by construction)
// and only the flat fast-path phase vectorizes: narrow, crisp, and
// degenerate shapes resolve almost every lane in the fast path (the
// realistic regimes -- linguistic terms are narrow relative to their
// domain), while the wide family forces the shared exact sweep and
// batches only save call overhead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/exec_stats.h"
#include "fuzzy/arithmetic.h"
#include "fuzzy/degree.h"
#include "fuzzy/degree_batch.h"
#include "fuzzy/interval_order.h"
#include "fuzzy/trapezoid_batch.h"

namespace fuzzydb {
namespace {

// Wide shapes: four sorted uniforms over the whole domain, so supports
// overlap heavily and the exact candidate sweep dominates. This is the
// adversarial regime for the batch fast paths.
std::vector<Trapezoid> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trapezoid> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double c[4];
    for (double& v : c) v = rng.UniformDouble(0, 1000);
    std::sort(c, c + 4);
    values.emplace_back(c[0], c[1], c[2], c[3]);
  }
  return values;
}

/// Narrow shapes: supports a few units wide on a 1000-unit domain, the
/// shape of real linguistic terms ("about 30"); most pairs resolve in
/// the support-disjoint fast path.
std::vector<Trapezoid> NarrowValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trapezoid> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.UniformDouble(0, 1000);
    const double b = a + rng.UniformDouble(0, 5);
    const double c = b + rng.UniformDouble(0, 10);
    values.emplace_back(a, b, c, c + rng.UniformDouble(0, 5));
  }
  return values;
}

/// Crisp points: the kernels' all-lanes-fast-path regime.
std::vector<Trapezoid> CrispValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trapezoid> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(Trapezoid::Crisp(rng.UniformDouble(0, 1000)));
  }
  return values;
}

/// Degenerate shapes: zero-width cores (triangles) and shared edges,
/// which exercise the vertical-edge corrections of the lane functions.
std::vector<Trapezoid> DegenerateValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Trapezoid> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.UniformDouble(0, 1000);
    const double b = a + rng.UniformDouble(0, 5);
    if (i % 2 == 0) {
      values.emplace_back(a, b, b, b + rng.UniformDouble(0, 5));  // triangle
    } else {
      values.emplace_back(a, a, b, b);  // vertical edges
    }
  }
  return values;
}

enum Family : int64_t { kNarrow = 0, kWide = 1, kCrisp = 2, kDegenerate = 3 };

const std::vector<Trapezoid>& FamilyValues(int64_t family) {
  static const std::vector<Trapezoid> narrow = NarrowValues(4096, 31);
  static const std::vector<Trapezoid> wide = RandomValues(4096, 32);
  static const std::vector<Trapezoid> crisp = CrispValues(4096, 33);
  static const std::vector<Trapezoid> degenerate = DegenerateValues(4096, 34);
  switch (family) {
    case kWide:
      return wide;
    case kCrisp:
      return crisp;
    case kDegenerate:
      return degenerate;
    default:
      return narrow;
  }
}

// ------------------- scalar call-at-a-time kernels -------------------

void BM_EqualityDegree(benchmark::State& state) {
  const auto values = RandomValues(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = values[i % values.size()];
    const auto& y = values[(i * 7 + 3) % values.size()];
    benchmark::DoNotOptimize(EqualityDegree(x, y));
    ++i;
  }
}
BENCHMARK(BM_EqualityDegree);

void BM_LessEqualDegree(benchmark::State& state) {
  const auto values = RandomValues(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = values[i % values.size()];
    const auto& y = values[(i * 5 + 1) % values.size()];
    benchmark::DoNotOptimize(LessEqualDegree(x, y));
    ++i;
  }
}
BENCHMARK(BM_LessEqualDegree);

void BM_ApproxEqualDegree(benchmark::State& state) {
  const auto values = RandomValues(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    const auto& x = values[i % values.size()];
    const auto& y = values[(i * 11 + 5) % values.size()];
    benchmark::DoNotOptimize(ApproxEqualDegree(x, y, 10.0));
    ++i;
  }
}
BENCHMARK(BM_ApproxEqualDegree);

void BM_IntervalOrderCompare(benchmark::State& state) {
  const auto values = RandomValues(1024, 4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareIntervalOrder(
        values[i % values.size()], values[(i + 1) % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_IntervalOrderCompare);

void BM_FuzzyAdd(benchmark::State& state) {
  const auto values = RandomValues(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FuzzyAdd(values[i % values.size()],
                                      values[(i + 13) % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_FuzzyAdd);

void BM_CrispVsFuzzyEquality(benchmark::State& state) {
  // The CPU-cost asymmetry the paper cites: fuzzy predicates cost more
  // than crisp ones.
  const Trapezoid crisp_a = Trapezoid::Crisp(10), crisp_b = Trapezoid::Crisp(11);
  const Trapezoid fuzzy_a(8, 9, 11, 12), fuzzy_b(10, 11, 13, 14);
  const bool fuzzy = state.range(0) != 0;
  for (auto _ : state) {
    if (fuzzy) {
      benchmark::DoNotOptimize(EqualityDegree(fuzzy_a, fuzzy_b));
    } else {
      benchmark::DoNotOptimize(EqualityDegree(crisp_a, crisp_b));
    }
  }
}
BENCHMARK(BM_CrispVsFuzzyEquality)->Arg(0)->Arg(1);

// ------------------ batch-vs-scalar sweep kernels --------------------
//
// Args are {family, lanes}. Both sides go through their dispatch entry
// point: the scalar sweeps call SatisfactionDegree -- the per-pair
// dispatcher Value::Compare reaches on the engine's scalar path -- once
// per pair over the same values the batch sweeps hand to
// BatchSatisfactionDegree in one call, so the items_per_second columns
// compare exactly what the batched operators replace (both count
// lanes).

template <typename ScalarFn>
void ScalarSweepImpl(benchmark::State& state, ScalarFn f) {
  const auto& values = FamilyValues(state.range(0));
  const size_t lanes = static_cast<size_t>(state.range(1));
  const Trapezoid probe = values[7];
  double sum = 0.0;
  for (auto _ : state) {
    for (size_t i = 0; i < lanes; ++i) sum += f(values[i], probe);
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes));
}

template <typename BatchFn>
void BatchSweepImpl(benchmark::State& state, BatchFn f) {
  const auto& values = FamilyValues(state.range(0));
  const size_t lanes = static_cast<size_t>(state.range(1));
  const Trapezoid probe = values[7];
  TrapezoidBatch batch;
  for (size_t i = 0; i < lanes; ++i) batch.PushBack(values[i]);
  for (auto _ : state) {
    f(batch, probe, batch.degrees());
    benchmark::DoNotOptimize(batch.degrees()[0]);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes));
}

void BM_ScalarEqualitySweep(benchmark::State& state) {
  ScalarSweepImpl(state, [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kEq, y, 1.0);
  });
}
void BM_BatchEqualitySweep(benchmark::State& state) {
  BatchSweepImpl(state,
                 [](const TrapezoidBatch& xs, const Trapezoid& y, double* out) {
                   BatchSatisfactionDegree(xs, CompareOp::kEq, y, 1.0, out);
                 });
}
BENCHMARK(BM_ScalarEqualitySweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 1024})
    ->Args({kWide, 1024})
    ->Args({kCrisp, 1024})
    ->Args({kDegenerate, 1024});
BENCHMARK(BM_BatchEqualitySweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 64})
    ->Args({kNarrow, 256})
    ->Args({kNarrow, 1024})
    ->Args({kWide, 1024})
    ->Args({kCrisp, 64})
    ->Args({kCrisp, 256})
    ->Args({kCrisp, 1024})
    ->Args({kDegenerate, 64})
    ->Args({kDegenerate, 256})
    ->Args({kDegenerate, 1024});

void BM_ScalarLessSweep(benchmark::State& state) {
  ScalarSweepImpl(state, [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kLt, y, 1.0);
  });
}
void BM_BatchLessSweep(benchmark::State& state) {
  BatchSweepImpl(state,
                 [](const TrapezoidBatch& xs, const Trapezoid& y, double* out) {
                   BatchSatisfactionDegree(xs, CompareOp::kLt, y, 1.0, out);
                 });
}
BENCHMARK(BM_ScalarLessSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 1024})
    ->Args({kCrisp, 1024});
BENCHMARK(BM_BatchLessSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 64})
    ->Args({kNarrow, 256})
    ->Args({kNarrow, 1024})
    ->Args({kCrisp, 1024});

void BM_ScalarLessEqualSweep(benchmark::State& state) {
  ScalarSweepImpl(state, [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kLe, y, 1.0);
  });
}
void BM_BatchLessEqualSweep(benchmark::State& state) {
  BatchSweepImpl(state,
                 [](const TrapezoidBatch& xs, const Trapezoid& y, double* out) {
                   BatchSatisfactionDegree(xs, CompareOp::kLe, y, 1.0, out);
                 });
}
BENCHMARK(BM_ScalarLessEqualSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 1024})
    ->Args({kCrisp, 1024});
BENCHMARK(BM_BatchLessEqualSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 64})
    ->Args({kNarrow, 256})
    ->Args({kNarrow, 1024})
    ->Args({kCrisp, 1024});

void BM_ScalarNotEqualSweep(benchmark::State& state) {
  ScalarSweepImpl(state, [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kNe, y, 1.0);
  });
}
void BM_BatchNotEqualSweep(benchmark::State& state) {
  BatchSweepImpl(state,
                 [](const TrapezoidBatch& xs, const Trapezoid& y, double* out) {
                   BatchSatisfactionDegree(xs, CompareOp::kNe, y, 1.0, out);
                 });
}
BENCHMARK(BM_ScalarNotEqualSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 1024});
BENCHMARK(BM_BatchNotEqualSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 64})
    ->Args({kNarrow, 256})
    ->Args({kNarrow, 1024});

void BM_ScalarApproxEqualSweep(benchmark::State& state) {
  ScalarSweepImpl(state, [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kApproxEq, y, 10.0);
  });
}
void BM_BatchApproxEqualSweep(benchmark::State& state) {
  BatchSweepImpl(state,
                 [](const TrapezoidBatch& xs, const Trapezoid& y, double* out) {
                   BatchSatisfactionDegree(xs, CompareOp::kApproxEq, y, 10.0,
                                           out);
                 });
}
BENCHMARK(BM_ScalarApproxEqualSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 1024})
    ->Args({kCrisp, 1024});
BENCHMARK(BM_BatchApproxEqualSweep)
    ->ArgNames({"family", "lanes"})
    ->Args({kNarrow, 64})
    ->Args({kNarrow, 256})
    ->Args({kNarrow, 1024})
    ->Args({kCrisp, 1024});

void BM_BatchVsBatchEquality(benchmark::State& state) {
  const size_t lanes = static_cast<size_t>(state.range(0));
  const auto& values = FamilyValues(kNarrow);
  TrapezoidBatch xs, ys;
  for (size_t i = 0; i < lanes; ++i) {
    xs.PushBack(values[i]);
    ys.PushBack(values[(i + 101) % values.size()]);
  }
  for (auto _ : state) {
    BatchEqualityDegree(xs, ys, xs.degrees());
    benchmark::DoNotOptimize(xs.degrees()[0]);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes));
}
BENCHMARK(BM_BatchVsBatchEquality)->Arg(64)->Arg(256)->Arg(1024);

// ----------------------- JSON report mode ----------------------------
//
// A deterministic kernel report for the CI regression gate: the
// degree_evaluations counter of every entry is an exact function of the
// (seeded) inputs and the repeat count, so tools/bench_check.py holds
// it exactly; wall/cpu times get the usual ratio tolerance. Batches are
// prebuilt outside the timed region -- these entries gate the kernels
// themselves; the engine gather shows up in the query-level suites.

/// Sink the optimizer cannot drop (the kernel calls are opaque across
/// the TU boundary already; this guards the summation loops).
volatile double g_report_sink = 0.0;

struct KernelTimings {
  double wall_seconds = 0.0;
  uint64_t evaluations = 0;
};

void AddEntry(bench::BenchReport* report, const std::string& name,
              const KernelTimings& t) {
  ExecStats stats;
  stats.cpu.degree_evaluations = t.evaluations;
  stats.total_seconds = t.wall_seconds;
  stats.cpu_seconds = t.wall_seconds;
  report->Add(name, stats);
}

template <typename ScalarFn>
KernelTimings RunScalarSweep(const std::vector<Trapezoid>& values,
                             const Trapezoid& probe, size_t reps, ScalarFn f) {
  KernelTimings t;
  double sum = 0.0;
  Stopwatch watch;
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const Trapezoid& x : values) sum += f(x, probe);
  }
  t.wall_seconds = watch.ElapsedSeconds();
  t.evaluations = static_cast<uint64_t>(reps) * values.size();
  g_report_sink = sum;
  return t;
}

template <typename BatchFn>
KernelTimings RunBatchSweep(const std::vector<Trapezoid>& values,
                            const Trapezoid& probe, size_t lanes, size_t reps,
                            BatchFn f) {
  std::vector<TrapezoidBatch> chunks;
  for (size_t base = 0; base < values.size(); base += lanes) {
    const size_t count = std::min(lanes, values.size() - base);
    chunks.emplace_back();
    for (size_t i = 0; i < count; ++i) chunks.back().PushBack(values[base + i]);
  }
  KernelTimings t;
  double sum = 0.0;
  Stopwatch watch;
  for (size_t rep = 0; rep < reps; ++rep) {
    for (TrapezoidBatch& chunk : chunks) {
      f(chunk, probe, chunk.degrees());
      sum += chunk.degrees()[0];
    }
  }
  t.wall_seconds = watch.ElapsedSeconds();
  t.evaluations = static_cast<uint64_t>(reps) * values.size();
  g_report_sink = sum;
  return t;
}

void PrintRatio(const char* label, const KernelTimings& scalar,
                const KernelTimings& batch) {
  if (batch.wall_seconds <= 0.0) return;
  std::printf("  %-28s batch-1024 vs scalar: %s\n", label,
              bench::Ratio(scalar.wall_seconds / batch.wall_seconds).c_str());
}

int RunKernelReport(const std::string& path) {
  // Smoke mode shrinks the repeat count, not the data shape, so the
  // counters stay proportional and the baseline stays one file.
  const size_t reps = bench::SmokeRows(2000, 50);
  const auto narrow = NarrowValues(4096, 21);
  const auto wide = RandomValues(4096, 22);
  const auto crisp = CrispValues(4096, 23);
  const auto degenerate = DegenerateValues(4096, 24);

  // Like the sweep benchmarks above, both sides run their dispatch
  // entry point (SatisfactionDegree is what Value::Compare calls per
  // pair on the scalar path), so the stored ratios describe exactly
  // the engine's scalar-vs-batch choice.
  const auto scalar_eq = [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kEq, y, 1.0);
  };
  const auto batch_eq = [](const TrapezoidBatch& xs, const Trapezoid& y,
                           double* out) {
    BatchSatisfactionDegree(xs, CompareOp::kEq, y, 1.0, out);
  };
  const auto scalar_le = [](const Trapezoid& x, const Trapezoid& y) {
    return SatisfactionDegree(x, CompareOp::kLe, y, 1.0);
  };
  const auto batch_le = [](const TrapezoidBatch& xs, const Trapezoid& y,
                           double* out) {
    BatchSatisfactionDegree(xs, CompareOp::kLe, y, 1.0, out);
  };

  bench::BenchReport report("kernel", /*threads=*/1);
  struct FamilyRun {
    const char* label;
    KernelTimings scalar, batch;
  };
  std::vector<FamilyRun> runs;

  // Equality over each family: scalar sweep vs batch-1024 (narrow also
  // at 64/256 to show the batch-size trend).
  const struct {
    const char* name;
    const std::vector<Trapezoid>* values;
  } families[] = {{"narrow", &narrow},
                  {"wide", &wide},
                  {"crisp", &crisp},
                  {"degenerate", &degenerate}};
  for (const auto& fam : families) {
    FamilyRun run;
    run.label = fam.name;
    const Trapezoid probe = (*fam.values)[7];
    run.scalar = RunScalarSweep(*fam.values, probe, reps, scalar_eq);
    AddEntry(&report, std::string("eq_") + fam.name + "_scalar", run.scalar);
    if (fam.values == &narrow) {
      AddEntry(&report, "eq_narrow_batch64",
               RunBatchSweep(*fam.values, probe, 64, reps, batch_eq));
      AddEntry(&report, "eq_narrow_batch256",
               RunBatchSweep(*fam.values, probe, 256, reps, batch_eq));
    }
    run.batch = RunBatchSweep(*fam.values, probe, 1024, reps, batch_eq);
    AddEntry(&report, std::string("eq_") + fam.name + "_batch1024", run.batch);
    runs.push_back(run);
  }

  // One ordered comparator for coverage.
  const Trapezoid le_probe = narrow[7];
  AddEntry(&report, "le_narrow_scalar",
           RunScalarSweep(narrow, le_probe, reps, scalar_le));
  AddEntry(&report, "le_narrow_batch1024",
           RunBatchSweep(narrow, le_probe, 1024, reps, batch_le));

  std::printf("kernel throughput (equality, %zu lanes x %zu reps):\n",
              narrow.size(), reps);
  for (const auto& run : runs) PrintRatio(run.label, run.scalar, run.batch);
  return report.Write(path) ? 0 : 1;
}

}  // namespace
}  // namespace fuzzydb

int main(int argc, char** argv) {
  const std::string json_out = fuzzydb::bench::JsonOutPath(argc, argv);
  if (!json_out.empty()) {
    return fuzzydb::RunKernelReport(json_out);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
