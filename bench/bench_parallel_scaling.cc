// Thread scaling of the morsel-driven parallel unnested pipeline.
//
// A Table-1-style type J workload is evaluated by the unnesting
// evaluator with 1, 2, 4, and 8 worker threads. The in-memory pipeline
// (filter -> interval-order sort -> merge window -> degree folding) is
// the paper's CPU-bound core, so it is where extra cores pay off; the
// file executor's simulated I/O latency would mask the effect and is
// not used here. Answers are verified identical across thread counts
// (the morsel decomposition is fixed; see src/parallel/).
//
// Expected shape on a multicore machine: near-linear speedup to the
// physical core count, then flat. On a single-core machine every row
// reports ~1.0x (the parallel paths add only morsel bookkeeping).
#include "bench_common.h"

#include <algorithm>
#include <thread>

#include "common/stopwatch.h"
#include "engine/unnested_evaluator.h"
#include "sql/binder.h"

namespace {

using namespace fuzzydb;
using namespace fuzzydb::bench;

constexpr const char* kQuery =
    "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)";

}  // namespace

int main() {
  PrintHeader("Parallel scaling -- morsel-driven type J execution",
              "morsel-driven parallelism over the Section 9 workload");

  WorkloadConfig config;
  config.seed = 9100;
  config.num_r = SmokeRows(32768 / kScaleDown, 512);
  config.num_s = SmokeRows(32768 / kScaleDown, 512);
  config.join_fanout = 7;
  config.partial_membership_fraction = 0.4;
  TypeJDataset dataset = GenerateTypeJDataset(config);

  Catalog catalog;
  (void)catalog.AddRelation(dataset.r);
  (void)catalog.AddRelation(dataset.s);
  auto bound = sql::ParseAndBind(kQuery, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }

  std::printf("\n|R| = |S| = %zu tuples, hardware_concurrency = %u\n",
              config.num_r, std::thread::hardware_concurrency());
  std::printf("\n%8s | %10s %8s | %8s %6s\n", "threads", "best(s)",
              "speedup", "answers", "equal");

  Relation reference;
  double serial_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ExecOptions options;
    options.num_threads = threads;
    UnnestingEvaluator evaluator(options);

    // Warmup, then best of three.
    if (!evaluator.Evaluate(**bound).ok()) return 1;
    double best = 1e30;
    Relation answer;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      auto result = evaluator.Evaluate(**bound);
      const double s = watch.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "evaluate failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (s < best) best = s;
      answer = *std::move(result);
    }

    bool equal = true;
    if (threads == 1) {
      reference = answer;
      serial_seconds = best;
    } else {
      // Degrees must match exactly, not within a tolerance.
      equal = reference.EquivalentTo(answer, 0.0);
    }
    const double speedup = serial_seconds / std::max(best, 1e-9);
    std::printf("%8zu | %10s %8s | %8zu %6s\n", threads,
                Seconds(best).c_str(), Ratio(speedup).c_str(),
                answer.NumTuples(), equal ? "yes" : "NO!");
    std::printf(
        "{\"bench\":\"parallel_scaling\",\"threads\":%zu,"
        "\"seconds\":%.6f,\"speedup\":%.3f}\n",
        threads, best, speedup);

    // One extra traced run, outside the timing loop, for the
    // per-operator breakdown (tracing is thread-count-invariant, so the
    // counters are the same ones the timed runs incurred).
    ExecTrace trace;
    ExecOptions traced_options = options;
    traced_options.trace = &trace;
    CpuStats cpu;
    UnnestingEvaluator traced(traced_options, &cpu);
    if (!traced.Evaluate(**bound).ok()) return 1;
    EmitOperatorJson("parallel_scaling_t" + std::to_string(threads), trace);
    MaybeWriteChromeTrace(trace,
                          "parallel_scaling_t" + std::to_string(threads));
    std::fflush(stdout);
    if (!equal) return 1;
  }

  std::printf(
      "\nExpected shape: speedup tracks the physical core count (>= 2x at\n"
      "4 threads on a 4-core machine) and answers are bit-identical for\n"
      "every row. On one core the column stays ~1.0x.\n");
  return 0;
}
