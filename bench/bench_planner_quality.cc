// Planner quality: fixed-rule vs cost-based physical plans on chain
// queries (src/engine/cost_model.h, src/stats/column_stats.h).
//
// Section 8 of the paper determines the join order of a chain query by
// minimizing estimated intermediate sizes. The legacy path estimates
// link selectivities by sampling tuple pairs and always merge-joins
// where legal; the cost-based path (ExecOptions::cost_based) estimates
// from histogram statistics and picks the per-step algorithm by cost.
// This bench runs chains of K = 2, 3, 4 levels both ways and reports
//
//   - wall time and the examined tuple pairs (the intermediate-size
//     proxy the DP minimizes) per mode, and
//   - the cost-based runs' estimate quality as per-span q-error.
//
// Either mode must produce the *bit-identical* answer: the plan may only
// change the work, never the result. That is a hard assertion, not a
// report field.
#include "bench_common.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "engine/unnested_evaluator.h"
#include "sql/binder.h"

namespace {

using namespace fuzzydb;
using namespace fuzzydb::bench;

struct ChainCase {
  size_t k_levels;
  const char* sql;
};

// Chains over A(C0,C1,C2) and B2/C3/D4(C0,C1): adjacent levels link on
// C0/C1 with a correlation to the level above, the shape Section 8
// evaluates. Deliberately skewed level sizes give the planner real
// choices.
constexpr ChainCase kCases[] = {
    {2,
     "SELECT A.C0 FROM A WHERE A.C1 IN "
     "(SELECT B2.C0 FROM B2 WHERE B2.C1 = A.C2)"},
    {3,
     "SELECT A.C0 FROM A WHERE A.C1 IN "
     "(SELECT B2.C0 FROM B2 WHERE B2.C1 = A.C2 AND B2.C0 IN "
     "(SELECT C3.C0 FROM C3 WHERE C3.C1 = B2.C1))"},
    {4,
     "SELECT A.C0 FROM A WHERE A.C1 IN "
     "(SELECT B2.C0 FROM B2 WHERE B2.C1 = A.C2 AND B2.C0 IN "
     "(SELECT C3.C0 FROM C3 WHERE C3.C1 = B2.C1 AND C3.C0 IN "
     "(SELECT D4.C0 FROM D4 WHERE D4.C1 = C3.C1)))"},
};

// Per-span q-errors of one traced run: max(est, act) / min(est, act)
// with both sides floored at 1, over the spans that carry an estimate.
std::vector<double> CollectQErrors(const ExecTrace& trace) {
  std::vector<double> q_errors;
  for (const TraceNode& node : trace.nodes()) {
    if (node.est_rows == TraceNode::kNoCount ||
        node.output_rows == TraceNode::kNoCount) {
      continue;
    }
    const double est =
        static_cast<double>(std::max<uint64_t>(node.est_rows, 1));
    const double act =
        static_cast<double>(std::max<uint64_t>(node.output_rows, 1));
    q_errors.push_back(std::max(est / act, act / est));
  }
  return q_errors;
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Planner quality -- fixed-rule vs cost-based chain plans",
              "Section 8 join-order and join-method selection, estimated "
              "from column statistics instead of pair sampling");
  const std::string json_out = JsonOutPath(argc, argv);
  BenchReport report("planner");

  // Skewed level sizes (the planner's opportunity): wide outer chain
  // ends, narrow middles. The value domain is wide relative to support
  // widths so link selectivities stay small and a K = 4 chain's
  // intermediates stay bounded -- the generator's default 0..20 domain
  // gives ~0.3 per-link selectivity, which at these cardinalities
  // produces tens of millions of intermediate tuples.
  Catalog catalog;
  const size_t wide = SmokeRows(240, 48);
  const size_t narrow = SmokeRows(40, 12);
  constexpr double kDomainHi = 200.0;
  if (!catalog.AddRelation(
          GenerateRandomRelation(71, "A", 3, wide, 0.0, kDomainHi)).ok() ||
      !catalog.AddRelation(
          GenerateRandomRelation(72, "B2", 2, narrow, 0.0, kDomainHi)).ok() ||
      !catalog.AddRelation(
          GenerateRandomRelation(73, "C3", 2, wide, 0.0, kDomainHi)).ok() ||
      !catalog.AddRelation(
          GenerateRandomRelation(74, "D4", 2, narrow, 0.0, kDomainHi)).ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }

  std::printf("\n|A| = |C3| = %zu, |B2| = |D4| = %zu tuples in memory\n",
              wide, narrow);
  std::printf("\n%3s %8s | %10s %12s | %8s %8s | %6s\n", "K", "mode",
              "wall(s)", "tuple_pairs", "q_p50", "q_max", "equal");

  for (const ChainCase& chain : kCases) {
    auto bound = sql::ParseAndBind(chain.sql, catalog);
    if (!bound.ok()) {
      std::fprintf(stderr, "bind failed (K=%zu): %s\n", chain.k_levels,
                   bound.status().ToString().c_str());
      return 1;
    }
    // K = 2 is the paper's type J (one nesting level); K >= 3 is CHAIN.
    if (chain.k_levels >= 3 && Classify(**bound) != QueryType::kChain) {
      std::fprintf(stderr, "K=%zu query did not classify as CHAIN\n",
                   chain.k_levels);
      return 1;
    }

    Relation reference;
    bool have_reference = false;
    for (const bool cost_based : {true, false}) {
      ExecTrace trace;
      ExecOptions options;
      options.num_threads = 1;
      options.cost_based = cost_based;
      options.trace = &trace;
      CpuStats cpu;  // counters only tick with an external accumulator
      UnnestingEvaluator evaluator(options, &cpu);
      evaluator.set_use_join_order_planner(true);

      Stopwatch watch;
      auto answer = evaluator.Evaluate(**bound);
      const double seconds = watch.ElapsedSeconds();
      if (!answer.ok()) {
        std::fprintf(stderr, "K=%zu %s run failed: %s\n", chain.k_levels,
                     cost_based ? "cbo" : "fixed",
                     answer.status().ToString().c_str());
        return 1;
      }

      bool equal = true;
      if (!have_reference) {
        reference = *std::move(answer);
        have_reference = true;
      } else {
        // The load-bearing claim: plans choose work, never answers.
        equal = reference.EquivalentTo(*answer, 0.0);
      }

      const std::vector<double> q_errors = CollectQErrors(trace);
      const double q_p50 = Median(q_errors);
      double q_max = 0.0;
      for (double q : q_errors) q_max = std::max(q_max, q);

      ExecStats stats;
      stats.cpu = cpu;
      stats.total_seconds = seconds;
      const char* mode = cost_based ? "cbo" : "fixed";
      std::printf("%3zu %8s | %10s %12llu | %8.2f %8.2f | %6s\n",
                  chain.k_levels, mode, Seconds(seconds).c_str(),
                  static_cast<unsigned long long>(stats.cpu.tuple_pairs),
                  q_p50, q_max, equal ? "yes" : "NO!");
      std::printf(
          "{\"bench\":\"planner_quality\",\"k\":%zu,\"mode\":\"%s\","
          "\"seconds\":%.6f,\"tuple_pairs\":%llu,"
          "\"plan_q_error_p50\":%.3f,\"plan_q_error_max\":%.3f}\n",
          chain.k_levels, mode, seconds,
          static_cast<unsigned long long>(stats.cpu.tuple_pairs), q_p50,
          q_max);
      std::fflush(stdout);
      report.Add("k=" + std::to_string(chain.k_levels) + "_" + mode, stats);
      if (!equal) {
        std::fprintf(stderr,
                     "FAIL: K=%zu answers diverged between plan modes\n",
                     chain.k_levels);
        return 1;
      }
    }
  }

  if (!json_out.empty() && !report.Write(json_out)) return 1;

  std::printf(
      "\nExpected shape: both modes return bit-identical answers at every\n"
      "K; the cost-based plans spend no tuple-pair sampling to order the\n"
      "chain and keep per-span q-error near 1 on these workloads.\n");
  return 0;
}
