// Ablation: WITH-threshold pushdown into the merge-join ([42]).
//
// The paper points to Zhang & Wang's follow-up ("A further optimization
// of the merge-join is presented in [42]", using fuzzy equality
// indicators). This bench quantifies our implementation of that idea:
// with WITH D >= z, the merge window runs on the z-cuts of the join
// values instead of their supports, so higher thresholds examine fewer
// pairs and evaluate fewer fuzzy predicates.
#include "bench_common.h"

int main() {
  using namespace fuzzydb;
  using namespace fuzzydb::bench;

  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Ablation -- WITH-threshold pushdown via alpha-cut windows",
              "Zhang & Wang [42] (cited in Section 1 of the paper)");

  const size_t tuples = 16384;
  WorkloadConfig config;
  config.seed = 9100;
  config.num_r = tuples;
  config.num_s = tuples;
  config.join_fanout = 16;
  config.fuzzy_fraction = 1.0;
  config.partial_membership_fraction = 0.5;
  auto files = MakeDatasetFiles(config, 128, "th");
  if (!files.ok()) return 1;

  std::printf("\n%10s | %12s %14s %14s | %10s\n", "threshold", "resp(s)",
              "pairs", "degree-evals", "answers");
  for (double threshold : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    TypeJQuerySpec spec;
    spec.threshold = threshold;
    auto merged = RunTypeJMergeJoin(files->r.get(), files->s.get(), spec,
                                    kBufferPages,
                                    BenchDir() + "/fuzzydb_bench_th", 128);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    std::printf("%10.2f | %12s %14llu %14llu | %10zu\n", threshold,
                Seconds(merged->stats.total_seconds).c_str(),
                static_cast<unsigned long long>(merged->stats.cpu.tuple_pairs),
                static_cast<unsigned long long>(
                    merged->stats.cpu.degree_evaluations),
                merged->answer.NumTuples());
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: the examined-pair and degree-evaluation counts\n"
      "shrink monotonically as the threshold rises (the z-cut windows\n"
      "tighten), while the I/O-dominated response time moves little --\n"
      "the CPU-side saving [42] reports.\n");
  return 0;
}
