// Table 2: outer relation fixed (paper 4 MB), inner relation grows
// (2 -> 16 MB). Paper: nested-loop time grows linearly with the inner
// size; the merge-join speedup peaks around equal sizes (38x) and then
// declines (14.4x) because NL becomes O(n) while merge-join stays
// O(n log n) once one side is fixed.
#include "bench_common.h"

int main() {
  using namespace fuzzydb;
  using namespace fuzzydb::bench;

  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Table 2 -- fixed 4MB outer, growing inner relation, C = 7",
              "Yang et al., Section 9 Table 2");

  const size_t outer_tuples = 4 * 1024 * 1024 / kScaleDown / 128;
  const size_t inner_mb[] = {2, 4, 8, 16};

  std::printf("\n%10s %8s | %12s %12s %8s | %10s %10s\n", "inner", "tuples",
              "nested(s)", "merge(s)", "speedup", "NL-IOs", "MJ-IOs");
  for (size_t mb : inner_mb) {
    const size_t inner_tuples = mb * 1024 * 1024 / kScaleDown / 128;
    WorkloadConfig config;
    config.seed = 2000 + mb;
    config.num_r = outer_tuples;
    config.num_s = inner_tuples;
    config.join_fanout = 7;
    auto files = MakeDatasetFiles(config, 128, "t2_" + std::to_string(mb));
    if (!files.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   files.status().ToString().c_str());
      return 1;
    }
    auto nested = RunNested(&*files);
    auto merged = RunMerge(&*files, "t2_" + std::to_string(mb));
    if (!nested.ok() || !merged.ok()) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%zuMB", mb);
    std::printf("%10s %8zu | %12s %12s %8s | %10llu %10llu\n", label,
                inner_tuples, Seconds(nested->stats.total_seconds).c_str(),
                Seconds(merged->stats.total_seconds).c_str(),
                Ratio(nested->stats.total_seconds /
                      merged->stats.total_seconds)
                    .c_str(),
                static_cast<unsigned long long>(nested->stats.io.TotalIos()),
                static_cast<unsigned long long>(
                    merged->stats.io.TotalIos()));
    std::fflush(stdout);
  }

  std::printf(
      "\nPaper reference: NL 3912/7790/15489/31049 s (linear in inner size);\n"
      "MJ 156/205/476/2152 s; speedup 25.1/38/32.5/14.4 (peaks near equal\n"
      "sizes, declines as the inner relation dominates).\n");
  return 0;
}
