// Ablation: interval width ("vagueness") vs merge-join efficiency.
//
// Section 3 of the paper warns that Rng(r) may contain *dangling* tuples
// -- inner tuples whose supports overlap the window but do not join r --
// and that "in many applications data values may be fuzzy but not
// excessively so... In this case the number of dangling tuples will be
// very small", while temporal-style wide intervals "could have an adverse
// effect on the merge-join". This bench quantifies that: join values are
// spread uniformly over a fixed domain and the support width is swept, so
// wider values mean larger windows and more examined-but-not-joining
// pairs per produced pair.
#include "bench_common.h"

#include <algorithm>

#include "common/rng.h"
#include "fuzzy/interval_order.h"

namespace {

using namespace fuzzydb;
using namespace fuzzydb::bench;

/// Uniform (non-grouped) relation over [0, domain]. Support widths vary
/// per value, uniform in [width/50, width]: mixing narrow and wide values
/// is what produces dangling tuples -- a wide inner value forces the
/// window open across many narrow ones that do not join (the paper's
/// example: r.X = [30,40], s.X = [10,35] traps every value in [10,30]).
Relation MakeUniform(uint64_t seed, const std::string& name, size_t tuples,
                     double domain, double width, bool outer) {
  Rng rng(seed);
  std::vector<Column> cols;
  if (outer) {
    cols = {Column{"X", ValueType::kFuzzy}, Column{"Y", ValueType::kFuzzy},
            Column{"U", ValueType::kFuzzy}};
  } else {
    cols = {Column{"Z", ValueType::kFuzzy}, Column{"V", ValueType::kFuzzy}};
  }
  Relation rel(name, Schema(cols));
  for (size_t i = 0; i < tuples; ++i) {
    const double center = rng.UniformDouble(0, domain);
    const double w = rng.UniformDouble(width / 50, width);
    const double lo = center - w / 2, hi = center + w / 2;
    double b = rng.UniformDouble(lo, hi), c = rng.UniformDouble(lo, hi);
    if (b > c) std::swap(b, c);
    const Value join_value = Value::Fuzzy(Trapezoid(lo, b, c, hi));
    if (outer) {
      (void)rel.Append(Tuple({Value::Number(static_cast<double>(i)),
                              join_value, Value::Number(0)},
                             1.0));
    } else {
      (void)rel.Append(Tuple({join_value, Value::Number(0)}, 1.0));
    }
  }
  return rel;
}

}  // namespace

int main() {
  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Ablation -- interval width vs merge-join window efficiency",
              "Yang et al., Section 3 (dangling tuples) and Section 9 "
              "closing remark");

  const size_t tuples = 4000;
  const double domain = 100000.0;
  const double widths[] = {1, 10, 100, 1000, 5000};

  std::printf("\n%9s | %12s %14s %12s | %12s %10s\n", "width", "pairs",
              "joined-pairs", "dangling(%)", "resp(s)", "IOs");
  for (double width : widths) {
    Relation r = MakeUniform(61, "R", tuples, domain, width, true);
    Relation s = MakeUniform(62, "S", tuples, domain, width, false);

    BufferPool setup(kBufferPages);
    setup.set_simulated_latency_us(0);
    const std::string r_path = BenchDir() + "/fuzzydb_abl_w.R";
    const std::string s_path = BenchDir() + "/fuzzydb_abl_w.S";
    auto r_file = WriteRelationToFile(r, r_path, &setup, 128);
    auto s_file = WriteRelationToFile(s, s_path, &setup, 128);
    if (!r_file.ok() || !s_file.ok()) return 1;

    DatasetFiles files;
    files.r = std::move(*r_file);
    files.s = std::move(*s_file);
    files.r_path = r_path;
    files.s_path = s_path;
    files.tuple_bytes = 128;

    auto merged = RunMerge(&files, "abl_w");
    if (!merged.ok()) return 1;
    const ExecStats& stats = merged->stats;

    // Count the truly joining pairs with an (untimed) in-memory window
    // sweep, to contrast with the pairs the merge-join had to examine.
    uint64_t joined = 0;
    {
      std::vector<const Tuple*> rs, ss;
      for (const Tuple& t : r.tuples()) rs.push_back(&t);
      for (const Tuple& t : s.tuples()) ss.push_back(&t);
      auto begin_of = [](const Tuple* t, size_t col) {
        return t->ValueAt(col).AsFuzzy().SupportBegin();
      };
      auto end_of = [](const Tuple* t, size_t col) {
        return t->ValueAt(col).AsFuzzy().SupportEnd();
      };
      std::sort(rs.begin(), rs.end(), [&](const Tuple* a, const Tuple* b) {
        return IntervalOrderLess(a->ValueAt(1).AsFuzzy(),
                                 b->ValueAt(1).AsFuzzy());
      });
      std::sort(ss.begin(), ss.end(), [&](const Tuple* a, const Tuple* b) {
        return IntervalOrderLess(a->ValueAt(0).AsFuzzy(),
                                 b->ValueAt(0).AsFuzzy());
      });
      size_t start = 0;
      for (const Tuple* rt : rs) {
        while (start < ss.size() &&
               end_of(ss[start], 0) < begin_of(rt, 1)) {
          ++start;
        }
        for (size_t i = start; i < ss.size(); ++i) {
          if (begin_of(ss[i], 0) > end_of(rt, 1)) break;
          if (rt->ValueAt(1).Compare(CompareOp::kEq,
                                     ss[i]->ValueAt(0)) > 0.0) {
            ++joined;
          }
        }
      }
    }

    const double dangling =
        stats.cpu.tuple_pairs == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(joined) /
                                 static_cast<double>(stats.cpu.tuple_pairs));
    std::printf("%9.0f | %12llu %14llu %12.1f | %12s %10llu\n", width,
                static_cast<unsigned long long>(stats.cpu.tuple_pairs),
                static_cast<unsigned long long>(joined), dangling,
                Seconds(stats.total_seconds).c_str(),
                static_cast<unsigned long long>(stats.io.TotalIos()));
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: with narrow supports nearly every windowed pair\n"
      "joins (dangling%% ~ 0) and CPU work stays near-linear; as supports\n"
      "widen the windows balloon, the examined-pair count grows toward\n"
      "quadratic and the dangling share rises -- the adverse regime the\n"
      "paper attributes to temporal-style wide intervals.\n");
  return 0;
}
