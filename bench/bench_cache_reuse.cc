// Cross-query cache reuse: cold vs warm execution of a repeated type J
// workload (src/cache/cache_manager.h).
//
// Two measurements:
//  1. File executor: the same sort-merge query runs twice against the
//     same on-disk relations. The first (cold) run pays both external
//     sorts; the second (warm) run reuses the cached interval-sorted
//     runs and goes straight to the merge join. The paper's Table 3
//     attributes the bulk of type J response time to the sort phase, so
//     the warm run should be >= 2x faster at bench scale.
//  2. In-memory evaluator: the morsel-driven pipeline with the
//     permutation / filtered-block / result caches, repeated at 1, 2,
//     4, and 8 threads. Warm answers must be bit-identical to a
//     cache-off evaluation at every thread count, and the cache must
//     actually hit -- both are hard assertions (including smoke mode).
//
// The cache may only change wall time, never answers: every run here is
// verified against a cache-off reference before timings are reported.
#include "bench_common.h"

#include <algorithm>
#include <thread>

#include "cache/cache_manager.h"
#include "common/stopwatch.h"
#include "engine/unnested_evaluator.h"
#include "sql/binder.h"

namespace {

using namespace fuzzydb;
using namespace fuzzydb::bench;

constexpr const char* kQuery =
    "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)";

Result<RunResult> RunMergeWithCache(DatasetFiles* files,
                                    const std::string& tag,
                                    CacheManager* cache) {
  TypeJQuerySpec spec;
  ExecOptions options;
  options.num_threads = 1;
  options.cache = cache;
  return RunTypeJMergeJoin(files->r.get(), files->s.get(), spec, kBufferPages,
                           BenchDir() + "/fuzzydb_bench_" + tag + ".tmp",
                           files->tuple_bytes, &options);
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Cache reuse -- cold vs warm repeated type J workload",
              "sorted-run and inner-block caching over the Section 9 "
              "workload");
  const std::string json_out = JsonOutPath(argc, argv);
  BenchReport report("cache_reuse");

  WorkloadConfig config;
  config.seed = 9400;
  config.num_r = SmokeRows(32768 / kScaleDown, 512);
  config.num_s = SmokeRows(32768 / kScaleDown, 512);
  config.join_fanout = 7;
  config.partial_membership_fraction = 0.4;

  // ---- 1. File executor: sorted-run cache ---------------------------
  auto files = MakeDatasetFiles(config, 128, "cache_reuse");
  if (!files.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 files.status().ToString().c_str());
    return 1;
  }

  CacheManager file_cache;
  file_cache.set_capacity_bytes(256ull << 20);

  auto reference = RunMergeWithCache(&*files, "cache_off", nullptr);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference run failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  std::printf("\n|R| = |S| = %zu tuples on disk, %zu-byte records\n",
              config.num_r, files->tuple_bytes);
  std::printf("\n%8s | %10s %8s | %8s %6s\n", "run", "wall(s)", "speedup",
              "answers", "equal");

  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  for (const char* run : {"cold", "warm"}) {
    Stopwatch watch;
    auto result = RunMergeWithCache(&*files, "cache_on", &file_cache);
    const double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n", run,
                   result.status().ToString().c_str());
      return 1;
    }
    const bool equal = reference->answer.EquivalentTo(result->answer, 0.0);
    if (std::string(run) == "cold") {
      cold_seconds = seconds;
    } else {
      warm_seconds = seconds;
    }
    const double speedup =
        cold_seconds / std::max(seconds, 1e-9);
    std::printf("%8s | %10s %8s | %8zu %6s\n", run, Seconds(seconds).c_str(),
                Ratio(speedup).c_str(), result->answer.NumTuples(),
                equal ? "yes" : "NO!");
    std::printf(
        "{\"bench\":\"cache_reuse\",\"run\":\"%s\",\"seconds\":%.6f,"
        "\"speedup\":%.3f}\n",
        run, seconds, speedup);
    report.Add(std::string("merge_") + run, result->stats);
    if (!equal) return 1;
  }

  const CacheStats file_stats = file_cache.stats();
  std::printf("\nsorted-run cache: %llu hits, %llu misses, %llu inserts\n",
              static_cast<unsigned long long>(file_stats.hits),
              static_cast<unsigned long long>(file_stats.misses),
              static_cast<unsigned long long>(file_stats.inserts));
  if (file_stats.hits == 0) {
    std::fprintf(stderr, "FAIL: warm merge run never hit the cache\n");
    return 1;
  }
  const double warm_speedup = cold_seconds / std::max(warm_seconds, 1e-9);
  if (!SmokeMode() && warm_speedup < 2.0) {
    // At full bench scale the skipped sort phase dominates; smoke-scale
    // timings are too short to hold a ratio, so only correctness and
    // hit counters gate there.
    std::fprintf(stderr, "FAIL: warm merge speedup %.2fx < 2x\n",
                 warm_speedup);
    return 1;
  }

  // ---- 2. In-memory evaluator: result/permutation caches ------------
  TypeJDataset dataset = GenerateTypeJDataset(config);
  Catalog catalog;
  (void)catalog.AddRelation(dataset.r);
  (void)catalog.AddRelation(dataset.s);
  auto bound = sql::ParseAndBind(kQuery, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }

  std::printf("\nIn-memory pipeline, hardware_concurrency = %u\n",
              std::thread::hardware_concurrency());
  std::printf("\n%8s | %10s %10s %8s | %6s\n", "threads", "cold(s)",
              "warm(s)", "speedup", "equal");

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ExecOptions off_options;
    off_options.num_threads = threads;
    UnnestingEvaluator off_engine(off_options);
    auto expected = off_engine.Evaluate(**bound);
    if (!expected.ok()) return 1;

    CacheManager cache;
    cache.set_capacity_bytes(256ull << 20);
    ExecOptions options;
    options.num_threads = threads;
    options.cache = &cache;
    UnnestingEvaluator engine(options);

    Stopwatch cold_watch;
    auto cold = engine.Evaluate(**bound);
    const double mem_cold = cold_watch.ElapsedSeconds();
    if (!cold.ok()) return 1;

    double mem_warm = 1e30;
    Relation warm_answer;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch watch;
      auto warm = engine.Evaluate(**bound);
      const double s = watch.ElapsedSeconds();
      if (!warm.ok()) return 1;
      if (s < mem_warm) mem_warm = s;
      warm_answer = *std::move(warm);
    }

    // Bit-identical, not merely close: the cache must be invisible in
    // the answer at every thread count.
    const bool equal = expected->EquivalentTo(*cold, 0.0) &&
                       expected->EquivalentTo(warm_answer, 0.0);
    const double speedup = mem_cold / std::max(mem_warm, 1e-9);
    std::printf("%8zu | %10s %10s %8s | %6s\n", threads,
                Seconds(mem_cold).c_str(), Seconds(mem_warm).c_str(),
                Ratio(speedup).c_str(), equal ? "yes" : "NO!");
    std::printf(
        "{\"bench\":\"cache_reuse_mem\",\"threads\":%zu,"
        "\"cold_seconds\":%.6f,\"warm_seconds\":%.6f,\"speedup\":%.3f}\n",
        threads, mem_cold, mem_warm, speedup);
    std::fflush(stdout);
    if (!equal) {
      std::fprintf(stderr, "FAIL: cached answers diverged at %zu threads\n",
                   threads);
      return 1;
    }
    if (cache.stats().hits == 0) {
      std::fprintf(stderr, "FAIL: warm runs never hit the cache at %zu "
                           "threads\n",
                   threads);
      return 1;
    }
  }

  if (!json_out.empty() && !report.Write(json_out)) return 1;

  std::printf(
      "\nExpected shape: the warm file-executor run skips both external\n"
      "sorts and lands >= 2x below the cold run at full scale; in-memory\n"
      "warm runs serve the whole answer from the result cache.\n");
  return 0;
}
