// Shared infrastructure for the paper-reproduction benchmarks.
//
// Scaling: the paper ran on a 1991 SPARC/IPC with 1-32 MB relations and a
// 2 MB buffer. We scale data sizes 16x down (64 KB - 2 MB) and the buffer
// identically (128 KB = 16 pages), so every buffer:data ratio matches the
// paper's, and add a simulated per-page device latency so the I/O share
// of response time is meaningful on a machine whose files sit in the OS
// page cache. Absolute times are not comparable to the paper; the shape
// (who wins, by what factor, where the trend bends) is.
#ifndef FUZZYDB_BENCH_BENCH_COMMON_H_
#define FUZZYDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "obs/trace.h"
#include "storage/heap_file.h"
#include "workload/generator.h"

namespace fuzzydb {
namespace bench {

/// The scale factor relative to the paper's data sizes.
inline constexpr size_t kScaleDown = 2;

/// The paper's buffer was 2 MB; scaled: 1 MB = 128 pages of 8 KB.
inline constexpr size_t kBufferPages = 128;

/// Simulated device latency per page transfer (microseconds). A 1991
/// SCSI disk service time was ~20 ms; scaled down with the data (and to
/// keep bench wall time in seconds) we default to 50 us per page.
uint64_t SimulatedLatencyUs();

/// Directory for bench working files (respects $TMPDIR, else /tmp).
std::string BenchDir();

/// On-disk dataset for one experiment configuration.
struct DatasetFiles {
  std::unique_ptr<PageFile> r;
  std::unique_ptr<PageFile> s;
  size_t tuple_bytes = 128;
  std::string r_path, s_path;

  DatasetFiles() = default;
  DatasetFiles(DatasetFiles&&) = default;
  DatasetFiles& operator=(DatasetFiles&&) = default;
  /// Removes the backing files.
  ~DatasetFiles();
};

/// Generates the workload and writes both relations as heap files padded
/// to `tuple_bytes` per record. Generation is not measured.
Result<DatasetFiles> MakeDatasetFiles(const WorkloadConfig& config,
                                      size_t tuple_bytes,
                                      const std::string& tag);

/// True when $FUZZYDB_BENCH_SMOKE is set (non-empty, not "0"): the CI
/// smoke mode, where benches shrink row counts to finish in seconds.
bool SmokeMode();

/// `n` normally, `smoke_n` (capped at n) under SmokeMode().
size_t SmokeRows(size_t n, size_t smoke_n = 64);

/// Runs the nested-loop execution of the experimental type J query.
/// With `trace` set, operator spans are recorded (see obs/trace.h).
Result<RunResult> RunNested(DatasetFiles* files, ExecTrace* trace = nullptr);

/// Runs the sort + extended-merge-join execution.
Result<RunResult> RunMerge(DatasetFiles* files, const std::string& tag,
                           ExecTrace* trace = nullptr);

/// Prints the per-operator summary of a traced run as single-line JSON
/// records: {"schema_version":...,"git_sha":...,"threads":...,
/// "bench":<bench>,"op":...} per span, machine-readable and comparable
/// across commits. `threads` is the run's ExecOptions::num_threads.
void EmitOperatorJson(const std::string& bench, const ExecTrace& trace,
                      int threads = 1);

/// Version of the BENCH_<suite>.json report schema; bump whenever a
/// field changes name or meaning so tools/bench_check.py can refuse to
/// compare incompatible files.
inline constexpr int kBenchSchemaVersion = 1;

/// The git revision the report describes: $FUZZYDB_GIT_SHA when set
/// (CI exports it from the checkout), else the configure-time value
/// baked into bench_common, else "unknown".
std::string GitSha();

/// Extracts PATH from a `--json-out=PATH` argument, else from
/// $FUZZYDB_BENCH_JSON_OUT, else "". Other arguments are ignored so
/// benches keep running under older invocations.
std::string JsonOutPath(int argc, char** argv);

/// One measured configuration inside a BenchReport. The counter fields
/// (ios, tuple_pairs, degree_evaluations) are deterministic for a
/// seeded workload at num_threads = 1, so the regression checker holds
/// them exactly; the time and memory fields get ratio tolerances.
struct BenchReportEntry {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  uint64_t ios = 0;
  uint64_t tuple_pairs = 0;
  uint64_t degree_evaluations = 0;
  uint64_t peak_mem_bytes = 0;  // external sort + partitioned join peaks
  // Merge-window length distribution (Rng(r) from the paper) for the
  // entry's run, from the engine histogram.
  double window_p50 = 0.0;
  double window_p90 = 0.0;
  double window_p99 = 0.0;
  double window_max = 0.0;
  // Planner estimate quality for the entry's run: quantiles of the
  // per-span q-error distribution (max(est, act) / min(est, act);
  // 1.0 = perfect) from the engine histogram. 0 when the run recorded
  // no estimates (cost-based planning off or untraced).
  double plan_q_error_p50 = 0.0;
  double plan_q_error_max = 0.0;
};

/// Accumulates per-configuration results and writes the machine-read
/// BENCH_<suite>.json consumed by tools/bench_check.py.
class BenchReport {
 public:
  explicit BenchReport(std::string suite, int threads = 1);

  /// Records one configuration: the run's own stats plus the engine
  /// metrics accumulated since the previous Add (peak memory, merge
  /// window quantiles), then resets the registry so entries don't
  /// bleed into each other.
  void Add(const std::string& name, const ExecStats& stats);

  std::string ToJson() const;

  /// Writes ToJson() to `path` ("-" = stdout). Returns false (after a
  /// message to stderr) when the file cannot be written.
  bool Write(const std::string& path) const;

 private:
  std::string suite_;
  int threads_;
  std::vector<BenchReportEntry> entries_;
};

/// Writes `trace` as Chrome trace_event JSON to
/// $FUZZYDB_TRACE_DIR/<name>.trace.json when that env var is set.
/// Returns true when a file was written.
bool MaybeWriteChromeTrace(const ExecTrace& trace, const std::string& name);

/// Prints a standard header naming the experiment and the scaling.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// "12.5x" style formatting helpers.
std::string Seconds(double s);
std::string Ratio(double r);

}  // namespace bench
}  // namespace fuzzydb

#endif  // FUZZYDB_BENCH_BENCH_COMMON_H_
