// Fig. 3: merge-join behaviour as the join fan-out C grows (1 -> 128)
// with both relations fixed at 8 MB (paper; scaled here). Paper: the
// number of I/Os stays roughly constant while CPU time -- fuzzy-library
// calls and merge/join comparisons -- grows with C, dragging response
// time up with it.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fuzzydb;
  using namespace fuzzydb::bench;

  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Fig. 3 -- response time / CPU time / #IOs vs join fan-out C",
              "Yang et al., Section 9 Fig. 3");
  const std::string json_out = JsonOutPath(argc, argv);
  BenchReport report("fig3_join_number");

  // Smoke mode (CI) shrinks the relations and the fan-out sweep so the
  // bench exercises the full path in seconds.
  const size_t tuples =
      SmokeRows(8 * 1024 * 1024 / kScaleDown / 128, 256);  // 4096 / 256
  const double cs_full[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const double cs_smoke[] = {1, 8};
  const double* cs = SmokeMode() ? cs_smoke : cs_full;
  const size_t num_cs = SmokeMode() ? 2 : 8;

  std::printf("\n%6s | %12s %12s | %10s | %14s %14s\n", "C", "resp(s)",
              "cpu(s)", "IOs", "pairs", "degree-evals");
  for (size_t ci = 0; ci < num_cs; ++ci) {
    const double c = cs[ci];
    WorkloadConfig config;
    config.seed = 5000 + static_cast<uint64_t>(c);
    config.num_r = tuples;
    config.num_s = tuples;
    config.join_fanout = c;
    auto files = MakeDatasetFiles(config, 128, "f3");
    if (!files.ok()) return 1;
    ExecTrace trace;
    auto merged = RunMerge(&*files, "f3", &trace);
    if (!merged.ok()) return 1;
    const ExecStats& stats = merged->stats;
    std::printf("%6.0f | %12s %12s | %10llu | %14llu %14llu\n", c,
                Seconds(stats.total_seconds).c_str(),
                Seconds(stats.cpu_seconds).c_str(),
                static_cast<unsigned long long>(stats.io.TotalIos()),
                static_cast<unsigned long long>(stats.cpu.tuple_pairs),
                static_cast<unsigned long long>(
                    stats.cpu.degree_evaluations));
    report.Add("c=" + std::to_string(static_cast<int>(c)), stats);
    EmitOperatorJson("fig3_join_number", trace);
    MaybeWriteChromeTrace(trace,
                          "fig3_c" + std::to_string(static_cast<int>(c)));
    std::fflush(stdout);
  }
  if (!json_out.empty() && !report.Write(json_out)) return 1;

  std::printf(
      "\nPaper reference (Fig. 3): as C goes 1 -> 128 the number of IOs\n"
      "stays essentially flat while CPU time grows (more fuzzy-library\n"
      "calls and merge/join comparisons), so response time grows with C.\n");
  return 0;
}
