// Table 1: response time of nested loop vs extended merge-join as both
// relations grow. Paper: 1..32 MB relations of 128-byte tuples, C = 7;
// nested loop skipped beyond 8 MB ("takes too long to terminate");
// speedups 12.5 -> 36.2 and growing.
#include "bench_common.h"
#include "obs/query_registry.h"

int main(int argc, char** argv) {
  using namespace fuzzydb;
  using namespace fuzzydb::bench;

  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Table 1 -- response time, equal-size relations, C = 7",
              "Yang et al., TKDE 13(6) 2001 (ICDE'95), Section 9 Table 1");
  const std::string json_out = JsonOutPath(argc, argv);
  BenchReport report("table1_scaling");

  // Paper sizes 1..32 MB, scaled 16x: 64 KB .. 2 MB. Smoke mode keeps
  // only the smallest sizes so CI finishes in seconds.
  const size_t paper_mb_full[] = {1, 2, 4, 8, 16, 32};
  const size_t paper_mb_smoke[] = {1, 2};
  const size_t* paper_mb = SmokeMode() ? paper_mb_smoke : paper_mb_full;
  const size_t num_mb = SmokeMode() ? 2 : 6;
  // The paper aborted nested loop beyond 8 MB.
  const size_t last_nested_mb = 8;

  std::printf("\n%10s %8s %6s | %12s %12s %8s | %10s %10s\n", "paper-size",
              "scaled", "tuples", "nested(s)", "merge(s)", "speedup",
              "NL-IOs", "MJ-IOs");
  for (size_t mi = 0; mi < num_mb; ++mi) {
    const size_t mb = paper_mb[mi];
    const size_t bytes = mb * 1024 * 1024 / kScaleDown;
    const size_t tuples = SmokeRows(bytes / 128, 512);

    WorkloadConfig config;
    config.seed = 1000 + mb;
    config.num_r = tuples;
    config.num_s = tuples;
    config.join_fanout = 7;
    auto files = MakeDatasetFiles(config, 128, "t1_" + std::to_string(mb));
    if (!files.ok()) {
      std::fprintf(stderr, "setup failed: %s\n",
                   files.status().ToString().c_str());
      return 1;
    }

    double nested_s = -1;
    uint64_t nested_io = 0;
    if (mb <= last_nested_mb) {
      auto nested = RunNested(&*files);
      if (!nested.ok()) {
        std::fprintf(stderr, "nested run failed: %s\n",
                     nested.status().ToString().c_str());
        return 1;
      }
      nested_s = nested->stats.total_seconds;
      nested_io = nested->stats.io.TotalIos();
    }

    auto merged = RunMerge(&*files, "t1_" + std::to_string(mb));
    if (!merged.ok()) {
      std::fprintf(stderr, "merge run failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    report.Add("mb=" + std::to_string(mb), merged->stats);

    char size_label[32], scaled_label[32];
    std::snprintf(size_label, sizeof(size_label), "%zuMB", mb);
    std::snprintf(scaled_label, sizeof(scaled_label), "%zuKB",
                  bytes / 1024);
    if (nested_s >= 0) {
      std::printf("%10s %8s %6zu | %12s %12s %8s | %10llu %10llu\n",
                  size_label, scaled_label, tuples, Seconds(nested_s).c_str(),
                  Seconds(merged->stats.total_seconds).c_str(),
                  Ratio(nested_s / merged->stats.total_seconds).c_str(),
                  static_cast<unsigned long long>(nested_io),
                  static_cast<unsigned long long>(
                      merged->stats.io.TotalIos()));
    } else {
      std::printf("%10s %8s %6zu | %12s %12s %8s | %10s %10llu\n", size_label,
                  scaled_label, tuples, "--",
                  Seconds(merged->stats.total_seconds).c_str(), "--", "--",
                  static_cast<unsigned long long>(
                      merged->stats.io.TotalIos()));
    }
    std::fflush(stdout);
  }
  // Introspection A/B: the largest configured size, run once without and
  // once with a live QueryProgress attached. The answer and the
  // deterministic counters must be bit-identical (observation never
  // perturbs the plan); the wall-clock delta is the overhead budget
  // (target <= 2%, reported as a warning because single-run timing is
  // noisy on shared CI hosts).
  {
    const size_t mb = paper_mb[num_mb - 1];
    const size_t bytes = mb * 1024 * 1024 / kScaleDown;
    WorkloadConfig config;
    config.seed = 1000 + mb;
    config.num_r = SmokeRows(bytes / 128, 512);
    config.num_s = config.num_r;
    config.join_fanout = 7;
    auto files = MakeDatasetFiles(config, 128, "t1_ab");
    if (!files.ok()) {
      std::fprintf(stderr, "A/B setup failed: %s\n",
                   files.status().ToString().c_str());
      return 1;
    }
    TypeJQuerySpec spec;
    ExecOptions off;
    off.num_threads = 1;
    auto baseline = RunTypeJMergeJoin(
        files->r.get(), files->s.get(), spec, kBufferPages,
        BenchDir() + "/fuzzydb_bench_t1_ab_off.tmp", files->tuple_bytes, &off);
    if (!baseline.ok()) {
      std::fprintf(stderr, "A/B baseline failed: %s\n",
                   baseline.status().ToString().c_str());
      return 1;
    }
    QueryProgress progress;
    ExecOptions on;
    on.num_threads = 1;
    on.progress = &progress;
    auto observed = RunTypeJMergeJoin(
        files->r.get(), files->s.get(), spec, kBufferPages,
        BenchDir() + "/fuzzydb_bench_t1_ab_on.tmp", files->tuple_bytes, &on);
    progress.FinishPhases();
    if (!observed.ok()) {
      std::fprintf(stderr, "A/B observed run failed: %s\n",
                   observed.status().ToString().c_str());
      return 1;
    }
    if (!baseline->answer.EquivalentTo(observed->answer, 0.0)) {
      std::fprintf(stderr,
                   "FAIL: introspection changed the answer "
                   "(%zu vs %zu tuples)\n",
                   baseline->answer.NumTuples(), observed->answer.NumTuples());
      return 1;
    }
    for (auto counter : CpuStats::Counters()) {
      if (baseline->stats.cpu.*counter != observed->stats.cpu.*counter) {
        std::fprintf(stderr,
                     "FAIL: introspection changed deterministic counters\n");
        return 1;
      }
    }
    const double base_s = baseline->stats.total_seconds;
    const double obs_s = observed->stats.total_seconds;
    const double overhead_pct =
        base_s > 0 ? (obs_s - base_s) / base_s * 100.0 : 0.0;
    std::printf(
        "\nIntrospection A/B @ %zuMB: off %s, on %s, overhead %+.2f%% "
        "(answers and counters bit-identical)\n",
        mb, Seconds(base_s).c_str(), Seconds(obs_s).c_str(), overhead_pct);
    if (overhead_pct > 2.0) {
      std::printf("WARNING: overhead above the 2%% budget "
                  "(timing noise is likely on shared hosts; re-run to "
                  "confirm before acting)\n");
    }
  }

  if (!json_out.empty() && !report.Write(json_out)) return 1;

  std::printf(
      "\nPaper reference (SPARC/IPC seconds): NL 501/1965/7754/30879/--/--;\n"
      "MJ 40/84/223/852/1897/3733; speedups 12.5/23.4/34.8/36.2.\n"
      "Expected shape: merge-join wins by an order of magnitude and the\n"
      "speedup grows with relation size until the NL runs become\n"
      "impractical, exactly as above.\n");
  return 0;
}
