#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

#ifndef FUZZYDB_GIT_SHA
#define FUZZYDB_GIT_SHA "unknown"
#endif

namespace fuzzydb {
namespace bench {

uint64_t SimulatedLatencyUs() {
  if (const char* env = std::getenv("FUZZYDB_BENCH_LATENCY_US")) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 50;
}

std::string BenchDir() {
  if (const char* env = std::getenv("TMPDIR")) return env;
  return "/tmp";
}

DatasetFiles::~DatasetFiles() {
  r.reset();
  s.reset();
  if (!r_path.empty()) RemoveFileIfExists(r_path);
  if (!s_path.empty()) RemoveFileIfExists(s_path);
}

Result<DatasetFiles> MakeDatasetFiles(const WorkloadConfig& config,
                                      size_t tuple_bytes,
                                      const std::string& tag) {
  TypeJDataset dataset = GenerateTypeJDataset(config);
  DatasetFiles files;
  files.tuple_bytes = tuple_bytes;
  files.r_path = BenchDir() + "/fuzzydb_bench_" + tag + ".R";
  files.s_path = BenchDir() + "/fuzzydb_bench_" + tag + ".S";
  // Setup I/O is not part of the measured run: no simulated latency.
  BufferPool setup_pool(kBufferPages);
  setup_pool.set_simulated_latency_us(0);
  FUZZYDB_ASSIGN_OR_RETURN(
      files.r,
      WriteRelationToFile(dataset.r, files.r_path, &setup_pool, tuple_bytes));
  FUZZYDB_ASSIGN_OR_RETURN(
      files.s,
      WriteRelationToFile(dataset.s, files.s_path, &setup_pool, tuple_bytes));
  return files;
}

bool SmokeMode() {
  const char* env = std::getenv("FUZZYDB_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

size_t SmokeRows(size_t n, size_t smoke_n) {
  return SmokeMode() ? std::min(n, smoke_n) : n;
}

Result<RunResult> RunNested(DatasetFiles* files, ExecTrace* trace) {
  TypeJQuerySpec spec;
  ExecOptions options;
  options.num_threads = 1;
  options.trace = trace;
  return RunTypeJNestedLoop(files->r.get(), files->s.get(), spec,
                            kBufferPages, trace == nullptr ? nullptr
                                                           : &options);
}

Result<RunResult> RunMerge(DatasetFiles* files, const std::string& tag,
                           ExecTrace* trace) {
  TypeJQuerySpec spec;
  // num_threads = 1 keeps the serial comparison counts (see executor.h),
  // so traced and untraced runs measure the same plan.
  ExecOptions options;
  options.num_threads = 1;
  options.trace = trace;
  return RunTypeJMergeJoin(files->r.get(), files->s.get(), spec, kBufferPages,
                           BenchDir() + "/fuzzydb_bench_" + tag + ".tmp",
                           files->tuple_bytes,
                           trace == nullptr ? nullptr : &options);
}

void EmitOperatorJson(const std::string& bench, const ExecTrace& trace,
                      int threads) {
  // One JSON line per span so downstream tooling can grep/parse rows
  // without a JSON stream parser. The schema/sha/threads prefix makes
  // stored lines comparable across commits.
  struct Walk {
    const ExecTrace& trace;
    const std::string& bench;
    const std::string& sha;
    int threads;
    void Visit(size_t id, int depth) {
      const TraceNode& node = trace.nodes()[id];
      std::printf(
          "{\"schema_version\":%d,\"git_sha\":\"%s\",\"threads\":%d,"
          "\"bench\":\"%s\",\"op\":\"%s\",\"detail\":\"%s\",\"depth\":%d,"
          "\"wall_ms\":%.4f,\"pairs\":%llu,\"degree_evals\":%llu,"
          "\"comparisons\":%llu,\"page_reads\":%llu,\"page_writes\":%llu}\n",
          kBenchSchemaVersion, sha.c_str(), threads, bench.c_str(),
          node.name.c_str(), node.detail.c_str(), depth,
          node.wall_seconds * 1000.0,
          static_cast<unsigned long long>(node.cpu.tuple_pairs),
          static_cast<unsigned long long>(node.cpu.degree_evaluations),
          static_cast<unsigned long long>(node.cpu.comparisons),
          static_cast<unsigned long long>(node.io.page_reads),
          static_cast<unsigned long long>(node.io.page_writes));
      for (size_t child : node.children) Visit(child, depth + 1);
    }
  };
  const std::string sha = GitSha();
  Walk walk{trace, bench, sha, threads};
  for (size_t root : trace.roots()) walk.Visit(root, 0);
}

std::string GitSha() {
  if (const char* env = std::getenv("FUZZYDB_GIT_SHA")) {
    if (*env != '\0') return env;
  }
  return FUZZYDB_GIT_SHA;
}

std::string JsonOutPath(int argc, char** argv) {
  const std::string kFlag = "--json-out=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) return arg.substr(kFlag.size());
  }
  if (const char* env = std::getenv("FUZZYDB_BENCH_JSON_OUT")) return env;
  return "";
}

BenchReport::BenchReport(std::string suite, int threads)
    : suite_(std::move(suite)), threads_(threads) {
  // Start each suite from a clean registry so the first entry's peak
  // memory and window quantiles describe only its own run.
  MetricsRegistry::Global().ResetAll();
}

void BenchReport::Add(const std::string& name, const ExecStats& stats) {
  BenchReportEntry entry;
  entry.name = name;
  entry.wall_seconds = stats.total_seconds;
  entry.cpu_seconds = stats.cpu_seconds;
  entry.ios = stats.io.TotalIos();
  entry.tuple_pairs = stats.cpu.tuple_pairs;
  entry.degree_evaluations = stats.cpu.degree_evaluations;
  if (EngineMetrics* metrics = EngineMetrics::IfEnabled()) {
    entry.peak_mem_bytes = static_cast<uint64_t>(
        metrics->sort_memory->Peak() + metrics->join_memory->Peak());
    const HistogramSnapshot window = metrics->merge_window_length->Snapshot();
    entry.window_p50 = window.Quantile(0.50);
    entry.window_p90 = window.Quantile(0.90);
    entry.window_p99 = window.Quantile(0.99);
    entry.window_max = static_cast<double>(window.max);
    // The engine records q-errors scaled by 100 (histograms hold
    // integers); report them back in natural units.
    const HistogramSnapshot q_error = metrics->planner_q_error->Snapshot();
    if (q_error.total_count > 0) {
      entry.plan_q_error_p50 = q_error.Quantile(0.50) / 100.0;
      entry.plan_q_error_max = static_cast<double>(q_error.max) / 100.0;
    }
    MetricsRegistry::Global().ResetAll();
  }
  entries_.push_back(std::move(entry));
}

std::string BenchReport::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema_version\": " << kBenchSchemaVersion << ",\n"
      << "  \"git_sha\": \"" << GitSha() << "\",\n"
      << "  \"suite\": \"" << suite_ << "\",\n"
      << "  \"threads\": " << threads_ << ",\n"
      << "  \"smoke\": " << (SmokeMode() ? "true" : "false") << ",\n"
      << "  \"benches\": [";
  char buf[512];
  for (size_t i = 0; i < entries_.size(); ++i) {
    const BenchReportEntry& e = entries_[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"name\": \"%s\", \"wall_seconds\": %.6f, "
        "\"cpu_seconds\": %.6f, \"ios\": %llu, \"tuple_pairs\": %llu, "
        "\"degree_evaluations\": %llu, \"peak_mem_bytes\": %llu, "
        "\"window_p50\": %.3f, \"window_p90\": %.3f, "
        "\"window_p99\": %.3f, \"window_max\": %.0f, "
        "\"plan_q_error_p50\": %.3f, \"plan_q_error_max\": %.3f}",
        i == 0 ? "" : ",", e.name.c_str(), e.wall_seconds, e.cpu_seconds,
        static_cast<unsigned long long>(e.ios),
        static_cast<unsigned long long>(e.tuple_pairs),
        static_cast<unsigned long long>(e.degree_evaluations),
        static_cast<unsigned long long>(e.peak_mem_bytes), e.window_p50,
        e.window_p90, e.window_p99, e.window_max, e.plan_q_error_p50,
        e.plan_q_error_max);
    out << buf;
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool BenchReport::Write(const std::string& path) const {
  const std::string json = ToJson();
  if (path == "-") {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << json;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool MaybeWriteChromeTrace(const ExecTrace& trace, const std::string& name) {
  const char* dir = std::getenv("FUZZYDB_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".trace.json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << trace.ToChromeTraceJson();
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scaling: data scaled down from the paper, buffer scaled "
              "identically (%zu pages);\n", kBufferPages);
  std::printf("simulated device latency %llu us/page "
              "(FUZZYDB_BENCH_LATENCY_US overrides).\n",
              static_cast<unsigned long long>(SimulatedLatencyUs()));
  std::printf("================================================================\n");
}

std::string Seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", r);
  return buf;
}

}  // namespace bench
}  // namespace fuzzydb
