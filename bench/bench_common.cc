#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace fuzzydb {
namespace bench {

uint64_t SimulatedLatencyUs() {
  if (const char* env = std::getenv("FUZZYDB_BENCH_LATENCY_US")) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 50;
}

std::string BenchDir() {
  if (const char* env = std::getenv("TMPDIR")) return env;
  return "/tmp";
}

DatasetFiles::~DatasetFiles() {
  r.reset();
  s.reset();
  if (!r_path.empty()) RemoveFileIfExists(r_path);
  if (!s_path.empty()) RemoveFileIfExists(s_path);
}

Result<DatasetFiles> MakeDatasetFiles(const WorkloadConfig& config,
                                      size_t tuple_bytes,
                                      const std::string& tag) {
  TypeJDataset dataset = GenerateTypeJDataset(config);
  DatasetFiles files;
  files.tuple_bytes = tuple_bytes;
  files.r_path = BenchDir() + "/fuzzydb_bench_" + tag + ".R";
  files.s_path = BenchDir() + "/fuzzydb_bench_" + tag + ".S";
  // Setup I/O is not part of the measured run: no simulated latency.
  BufferPool setup_pool(kBufferPages);
  setup_pool.set_simulated_latency_us(0);
  FUZZYDB_ASSIGN_OR_RETURN(
      files.r,
      WriteRelationToFile(dataset.r, files.r_path, &setup_pool, tuple_bytes));
  FUZZYDB_ASSIGN_OR_RETURN(
      files.s,
      WriteRelationToFile(dataset.s, files.s_path, &setup_pool, tuple_bytes));
  return files;
}

bool SmokeMode() {
  const char* env = std::getenv("FUZZYDB_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

size_t SmokeRows(size_t n, size_t smoke_n) {
  return SmokeMode() ? std::min(n, smoke_n) : n;
}

Result<RunResult> RunNested(DatasetFiles* files, ExecTrace* trace) {
  TypeJQuerySpec spec;
  ExecOptions options;
  options.num_threads = 1;
  options.trace = trace;
  return RunTypeJNestedLoop(files->r.get(), files->s.get(), spec,
                            kBufferPages, trace == nullptr ? nullptr
                                                           : &options);
}

Result<RunResult> RunMerge(DatasetFiles* files, const std::string& tag,
                           ExecTrace* trace) {
  TypeJQuerySpec spec;
  // num_threads = 1 keeps the serial comparison counts (see executor.h),
  // so traced and untraced runs measure the same plan.
  ExecOptions options;
  options.num_threads = 1;
  options.trace = trace;
  return RunTypeJMergeJoin(files->r.get(), files->s.get(), spec, kBufferPages,
                           BenchDir() + "/fuzzydb_bench_" + tag + ".tmp",
                           files->tuple_bytes,
                           trace == nullptr ? nullptr : &options);
}

void EmitOperatorJson(const std::string& bench, const ExecTrace& trace) {
  // One JSON line per span so downstream tooling can grep/parse rows
  // without a JSON stream parser.
  struct Walk {
    const ExecTrace& trace;
    const std::string& bench;
    void Visit(size_t id, int depth) {
      const TraceNode& node = trace.nodes()[id];
      std::printf(
          "{\"bench\":\"%s\",\"op\":\"%s\",\"detail\":\"%s\",\"depth\":%d,"
          "\"wall_ms\":%.4f,\"pairs\":%llu,\"degree_evals\":%llu,"
          "\"comparisons\":%llu,\"page_reads\":%llu,\"page_writes\":%llu}\n",
          bench.c_str(), node.name.c_str(), node.detail.c_str(), depth,
          node.wall_seconds * 1000.0,
          static_cast<unsigned long long>(node.cpu.tuple_pairs),
          static_cast<unsigned long long>(node.cpu.degree_evaluations),
          static_cast<unsigned long long>(node.cpu.comparisons),
          static_cast<unsigned long long>(node.io.page_reads),
          static_cast<unsigned long long>(node.io.page_writes));
      for (size_t child : node.children) Visit(child, depth + 1);
    }
  };
  Walk walk{trace, bench};
  for (size_t root : trace.roots()) walk.Visit(root, 0);
}

bool MaybeWriteChromeTrace(const ExecTrace& trace, const std::string& name) {
  const char* dir = std::getenv("FUZZYDB_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".trace.json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  file << trace.ToChromeTraceJson();
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scaling: data scaled down from the paper, buffer scaled "
              "identically (%zu pages);\n", kBufferPages);
  std::printf("simulated device latency %llu us/page "
              "(FUZZYDB_BENCH_LATENCY_US overrides).\n",
              static_cast<unsigned long long>(SimulatedLatencyUs()));
  std::printf("================================================================\n");
}

std::string Seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", r);
  return buf;
}

}  // namespace bench
}  // namespace fuzzydb
