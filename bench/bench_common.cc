#include "bench_common.h"

#include <cstdlib>

namespace fuzzydb {
namespace bench {

uint64_t SimulatedLatencyUs() {
  if (const char* env = std::getenv("FUZZYDB_BENCH_LATENCY_US")) {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 50;
}

std::string BenchDir() {
  if (const char* env = std::getenv("TMPDIR")) return env;
  return "/tmp";
}

DatasetFiles::~DatasetFiles() {
  r.reset();
  s.reset();
  if (!r_path.empty()) RemoveFileIfExists(r_path);
  if (!s_path.empty()) RemoveFileIfExists(s_path);
}

Result<DatasetFiles> MakeDatasetFiles(const WorkloadConfig& config,
                                      size_t tuple_bytes,
                                      const std::string& tag) {
  TypeJDataset dataset = GenerateTypeJDataset(config);
  DatasetFiles files;
  files.tuple_bytes = tuple_bytes;
  files.r_path = BenchDir() + "/fuzzydb_bench_" + tag + ".R";
  files.s_path = BenchDir() + "/fuzzydb_bench_" + tag + ".S";
  // Setup I/O is not part of the measured run: no simulated latency.
  BufferPool setup_pool(kBufferPages);
  setup_pool.set_simulated_latency_us(0);
  FUZZYDB_ASSIGN_OR_RETURN(
      files.r,
      WriteRelationToFile(dataset.r, files.r_path, &setup_pool, tuple_bytes));
  FUZZYDB_ASSIGN_OR_RETURN(
      files.s,
      WriteRelationToFile(dataset.s, files.s_path, &setup_pool, tuple_bytes));
  return files;
}

Result<RunResult> RunNested(DatasetFiles* files) {
  TypeJQuerySpec spec;
  return RunTypeJNestedLoop(files->r.get(), files->s.get(), spec,
                            kBufferPages);
}

Result<RunResult> RunMerge(DatasetFiles* files, const std::string& tag) {
  TypeJQuerySpec spec;
  return RunTypeJMergeJoin(files->r.get(), files->s.get(), spec, kBufferPages,
                           BenchDir() + "/fuzzydb_bench_" + tag + ".tmp",
                           files->tuple_bytes);
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scaling: data scaled down from the paper, buffer scaled "
              "identically (%zu pages);\n", kBufferPages);
  std::printf("simulated device latency %llu us/page "
              "(FUZZYDB_BENCH_LATENCY_US overrides).\n",
              static_cast<unsigned long long>(SimulatedLatencyUs()));
  std::printf("================================================================\n");
}

std::string Seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", s);
  return buf;
}

std::string Ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", r);
  return buf;
}

}  // namespace bench
}  // namespace fuzzydb
