// Table 4: the impact of I/O -- number of tuples fixed (paper 8,000),
// tuple size swept 128 -> 2048 bytes, C = 1. Paper: CPU work is constant,
// so response time grows with tuple size purely through I/O; merge-join
// stays well ahead of nested loop.
#include "bench_common.h"

int main() {
  using namespace fuzzydb;
  using namespace fuzzydb::bench;

  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Table 4 -- fixed tuple count, growing tuple size, C = 1",
              "Yang et al., Section 9 Table 4");

  // Tuple size is the experiment's variable, so the tuple count stays at
  // the paper's 8,000 (files grow 1 MB -> 16 MB across the sweep).
  const size_t tuples = 8000;
  const size_t tuple_sizes[] = {128, 256, 512, 1024, 2048};

  std::printf("\n%10s %8s | %12s %12s %8s | %10s %10s\n", "tuple(B)",
              "pages", "nested(s)", "merge(s)", "speedup", "NL-IOs",
              "MJ-IOs");
  for (size_t size : tuple_sizes) {
    WorkloadConfig config;
    config.seed = 4000 + size;
    config.num_r = tuples;
    config.num_s = tuples;
    config.join_fanout = 1;
    auto files = MakeDatasetFiles(config, size, "t4_" + std::to_string(size));
    if (!files.ok()) return 1;
    auto nested = RunNested(&*files);
    auto merged = RunMerge(&*files, "t4_" + std::to_string(size));
    if (!nested.ok() || !merged.ok()) return 1;

    std::printf("%10zu %8u | %12s %12s %8s | %10llu %10llu\n", size,
                files->r->NumPages(),
                Seconds(nested->stats.total_seconds).c_str(),
                Seconds(merged->stats.total_seconds).c_str(),
                Ratio(nested->stats.total_seconds /
                      merged->stats.total_seconds)
                    .c_str(),
                static_cast<unsigned long long>(nested->stats.io.TotalIos()),
                static_cast<unsigned long long>(
                    merged->stats.io.TotalIos()));
    std::fflush(stdout);
  }

  std::printf(
      "\nPaper reference: NL 485/514/584/729/1077 s, MJ 20/37/94/487/896 s.\n"
      "Expected shape: both grow with tuple size (pure I/O growth; the\n"
      "fuzzy-comparison CPU work is constant), and merge-join remains\n"
      "substantially faster throughout.\n");
  return 0;
}
