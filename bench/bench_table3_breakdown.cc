// Table 3: merge-join time breakdown over the Table 2 sweep -- the CPU
// share of response time and the share spent sorting. Paper: as the inner
// relation grows the join becomes more I/O intensive (CPU 76% -> 24%) and
// sorting dominates (38.7% -> 84.1%).
#include "bench_common.h"

int main() {
  using namespace fuzzydb;
  using namespace fuzzydb::bench;

  BufferPool::SetDefaultSimulatedLatencyUs(SimulatedLatencyUs());
  PrintHeader("Table 3 -- merge-join time breakdown (Table 2 sweep)",
              "Yang et al., Section 9 Table 3");

  const size_t outer_tuples = 4 * 1024 * 1024 / kScaleDown / 128;
  const size_t inner_mb[] = {2, 4, 8, 16};

  std::printf("\n%10s | %10s %12s | %10s %10s\n", "inner", "CPU(%)",
              "sorting(%)", "sort-IOs", "join-IOs");
  for (size_t mb : inner_mb) {
    const size_t inner_tuples = mb * 1024 * 1024 / kScaleDown / 128;
    WorkloadConfig config;
    config.seed = 3000 + mb;
    config.num_r = outer_tuples;
    config.num_s = inner_tuples;
    config.join_fanout = 7;
    auto files = MakeDatasetFiles(config, 128, "t3_" + std::to_string(mb));
    if (!files.ok()) return 1;
    auto merged = RunMerge(&*files, "t3_" + std::to_string(mb));
    if (!merged.ok()) return 1;

    const ExecStats& stats = merged->stats;
    const double cpu_pct = 100.0 * stats.cpu_seconds / stats.total_seconds;
    const double sort_pct = 100.0 * stats.sort_seconds / stats.total_seconds;
    // I/O split: join-phase reads happen after the pool stats reset;
    // total minus join-phase = sorting I/O. We report via phase seconds
    // and total IOs (sort writes runs + reads, join reads once).
    const uint64_t total_io = stats.io.TotalIos();
    const uint64_t join_io =
        files->r->NumPages() + files->s->NumPages();  // one scan each
    const uint64_t sort_io = total_io > join_io ? total_io - join_io : 0;

    char label[32];
    std::snprintf(label, sizeof(label), "%zuMB", mb);
    std::printf("%10s | %10.1f %12.1f | %10llu %10llu\n", label, cpu_pct,
                sort_pct, static_cast<unsigned long long>(sort_io),
                static_cast<unsigned long long>(join_io));
    std::fflush(stdout);
  }

  std::printf(
      "\nPaper reference: CPU%% 76/63/51/24, sorting%% 38.7/52.5/61.9/84.1.\n"
      "Expected shape: as the inner relation grows the run becomes more\n"
      "I/O bound (CPU%% falls) and sorting takes a growing share of the\n"
      "response time.\n");
  return 0;
}
